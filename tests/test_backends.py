"""Tests for the pluggable ExecutionBackend API.

The contract under test: every backend trains a physical plan to
byte-identical predictions vs the serial LocalBackend, on both a linear
(quickstart-style) pipeline and a gather/branching one; backend selection
threads through ``plan.execute``, ``Pipeline.fit`` and
``FittedPipeline.apply`` / ``apply_dataset``; ``ShardingPass`` decisions
reach ``explain()`` and the sharded backend's simulated pricing anchors to
measured serial time at ``workers=1``.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.resources import r3_4xlarge
from repro.core import graph as g
from repro.core.backends import (
    BACKENDS,
    ActorBackend,
    ExecutionBackend,
    LocalBackend,
    PipelinedBackend,
    ProcessPoolBackend,
    ShardedBackend,
    plan_scaling_sweep,
    resolve_backend,
)
from repro.core.executor import ExclusiveTimer
from repro.core.operators import Transformer
from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.passes import ShardingPass
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.numeric import StandardScaler
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import amazon_reviews
from workload_scenarios import SCENARIOS

WORKLOAD = amazon_reviews(200, 20, vocab_size=300, seed=0)

#: bounds every process-backend wave so a wedged worker fails the test
#: run instead of hanging it (the tests' deadlock guard)
PROCESS_TIMEOUT = 300.0


def text_pipeline(ctx, wl=WORKLOAD):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(200), data)
            .and_then(LinearSolver(), data, labels))


def branching_pipeline(ctx, wl=WORKLOAD):
    """Two solver branches over a shared featurization, gathered."""
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    base = (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 1))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(100), data))
    branch1 = base.and_then(LinearSolver(), data, labels)
    branch2 = base.and_then(LinearSolver(l2_reg=1.0), data, labels)
    return Pipeline.gather([branch1, branch2])


def comparable(rows):
    """Map prediction rows to hashable byte-exact representations."""
    out = []
    for row in rows:
        if isinstance(row, (list, tuple)):
            out.append(tuple(comparable(row)))
        else:
            arr = np.asarray(row)
            out.append((str(arr.dtype), arr.shape, arr.tobytes()))
    return out


def optimize(builder, extra_passes=()):
    passes = passes_for_level("full", sample_sizes=(20, 40))
    passes.extend(extra_passes)
    return Optimizer(passes).optimize(builder(Context()))


ALL_BACKENDS = [
    pytest.param(lambda: LocalBackend(), id="local"),
    pytest.param(lambda: PipelinedBackend(max_workers=3), id="pipelined"),
    pytest.param(lambda: ShardedBackend(workers=4,
                                        resources=r3_4xlarge(4)),
                 id="sharded"),
    pytest.param(lambda: ProcessPoolBackend(workers=2,
                                            task_timeout=PROCESS_TIMEOUT),
                 id="process"),
    pytest.param(lambda: ActorBackend(workers=2,
                                      task_timeout=PROCESS_TIMEOUT),
                 id="actors"),
]


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        """LocalBackend predictions for both pipeline shapes."""
        out = {}
        for key, builder in [("text", text_pipeline),
                             ("branching", branching_pipeline)]:
            fitted = optimize(builder).execute(backend=LocalBackend())
            rows = fitted.apply_dataset(
                WORKLOAD.test_data(Context())).collect()
            out[key] = comparable(rows)
        return out

    @pytest.mark.parametrize("make_backend", ALL_BACKENDS)
    @pytest.mark.parametrize("shape", ["text", "branching"])
    def test_byte_identical_predictions(self, make_backend, shape,
                                        reference):
        builder = text_pipeline if shape == "text" else branching_pipeline
        backend = make_backend()
        fitted = optimize(builder).execute(backend=backend)
        rows = fitted.apply_dataset(WORKLOAD.test_data(Context()),
                                    backend=backend).collect()
        assert comparable(rows) == reference[shape]

    @pytest.mark.parametrize("make_backend", ALL_BACKENDS)
    def test_single_item_apply_accepts_backend(self, make_backend):
        fitted = optimize(text_pipeline).execute()
        doc = "great product love it"
        expected = comparable([fitted.apply(doc)])
        got = comparable([fitted.apply(doc, backend=make_backend())])
        assert got == expected

    def test_fit_accepts_backend(self):
        fitted = text_pipeline(Context()).fit(sample_sizes=(20, 40),
                                              backend="pipelined")
        assert fitted.training_report.backend == "pipelined"
        assert fitted.apply("fine product") is not None

    def test_report_names_backend(self):
        plan = optimize(text_pipeline)
        fitted = plan.execute(backend=ShardedBackend(workers=4))
        assert fitted.training_report.backend == "sharded[workers=4]"


class TestTracingTransparency:
    """Tracing is a pure observer: zero spans recorded when disabled,
    byte-identical predictions on every backend when enabled."""

    @pytest.fixture(scope="class")
    def untraced_reference(self):
        fitted = optimize(text_pipeline).execute(backend=LocalBackend())
        rows = fitted.apply_dataset(WORKLOAD.test_data(Context())).collect()
        return comparable(rows)

    @pytest.mark.parametrize("make_backend", ALL_BACKENDS)
    def test_disabled_records_zero_spans(self, make_backend):
        from repro.obs import trace as obs_trace

        tracer = obs_trace.Tracer()
        obs_trace.enable(tracer)
        obs_trace.disable()
        assert not obs_trace.enabled()
        fitted = optimize(text_pipeline).execute(backend=make_backend())
        assert fitted.apply("fine product") is not None
        assert len(tracer) == 0
        assert tracer.dropped == 0

    @pytest.mark.parametrize("make_backend", ALL_BACKENDS)
    def test_byte_identical_with_tracing_on(self, make_backend,
                                            untraced_reference):
        from repro.obs import trace as obs_trace

        tracer = obs_trace.Tracer()
        obs_trace.enable(tracer)
        try:
            backend = make_backend()
            fitted = optimize(text_pipeline).execute(backend=backend)
            rows = fitted.apply_dataset(WORKLOAD.test_data(Context()),
                                        backend=backend).collect()
        finally:
            obs_trace.disable()
        assert comparable(rows) == untraced_reference
        assert len(tracer) > 0, "tracing was on but recorded nothing"


class TestResolveBackend:
    def test_none_is_local(self):
        assert isinstance(resolve_backend(None), LocalBackend)

    def test_instance_passthrough(self):
        backend = PipelinedBackend(2)
        assert resolve_backend(backend) is backend

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_names_resolve(self, name):
        backend = resolve_backend(name)
        assert isinstance(backend, ExecutionBackend)
        assert backend.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_plan_execute_rejects_unknown(self):
        plan = optimize(text_pipeline)
        with pytest.raises(ValueError, match="unknown backend"):
            plan.execute(backend="bogus")


class TestPipelinedBackend:
    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            PipelinedBackend(0)

    def test_terminates_without_deadlock(self):
        """Watchdog: a deadlocked scheduler fails instead of hanging."""
        result = {}

        def run():
            fitted = optimize(branching_pipeline).execute(
                backend=PipelinedBackend(max_workers=2))
            result["fitted"] = fitted

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=120)
        assert not worker.is_alive(), "pipelined execution deadlocked"
        assert result["fitted"].training_report.backend == "pipelined"

    def test_estimator_times_attributed(self):
        fitted = optimize(branching_pipeline).execute(
            backend=PipelinedBackend(max_workers=3))
        report = fitted.training_report
        # Three estimators: CommonSparseFeatures + two LinearSolvers.
        assert len(report.estimator_seconds) == 3
        assert all(t >= 0 for t in report.estimator_seconds.values())

    def test_lru_cache_safe_under_concurrency(self):
        """Regression: concurrent partition pulls raced the cache manager
        (eviction KeyError + corrupted byte accounting)."""
        reference = None
        for backend in (LocalBackend(), PipelinedBackend(max_workers=4)):
            fitted = branching_pipeline(Context()).fit(
                sample_sizes=(20, 40), cache_strategy="lru",
                mem_budget_bytes=2e5, backend=backend)
            rows = comparable(fitted.apply_dataset(
                WORKLOAD.test_data(Context())).collect())
            if reference is None:
                reference = rows
            assert rows == reference

    def test_error_propagates(self):
        from repro.core.operators import LabelEstimator

        class Boom(LabelEstimator):
            def fit(self, data, labels):
                raise RuntimeError("boom")

        ctx = Context()
        data = ctx.parallelize([1.0, 2.0], 2)
        labels = ctx.parallelize([1.0, 2.0], 2)
        pipe = Pipeline.identity().and_then(Boom(), data, labels)
        plan = Optimizer(passes_for_level("none")).optimize(pipe)
        with pytest.raises(RuntimeError, match="boom"):
            plan.execute(backend=PipelinedBackend(2))


class TestShardedBackend:
    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedBackend(workers=0)

    def test_workers_1_matches_serial_timings(self):
        """With one worker and no overhead, simulation == measurement."""
        backend = ShardedBackend(workers=1, resources=r3_4xlarge(1),
                                 overhead_per_stage=0.0)
        fitted = optimize(text_pipeline).execute(backend=backend)
        report = fitted.training_report
        assert report.simulated_workers == 1
        assert report.simulated_seconds == pytest.approx(
            sum(report.node_seconds.values()), rel=1e-9)

    def test_more_workers_shrink_simulated_time(self):
        results = {}
        for w in (1, 8):
            backend = ShardedBackend(workers=w, resources=r3_4xlarge(w),
                                     overhead_per_stage=0.0)
            fitted = optimize(text_pipeline).execute(backend=backend)
            results[w] = fitted.training_report.simulated_seconds
        assert results[8] < results[1]

    def test_workers_default_to_sharding_pass(self):
        plan = optimize(text_pipeline, [ShardingPass(workers=16)])
        fitted = plan.execute(backend=ShardedBackend())
        assert fitted.training_report.simulated_workers == 16

    def test_breakdown_separates_solve_from_featurize(self):
        fitted = optimize(text_pipeline).execute(
            backend=ShardedBackend(workers=4))
        breakdown = fitted.training_report.simulated_breakdown
        assert "Model Solve" in breakdown
        assert "Featurization" in breakdown

    def test_scaling_sweep_over_real_plan(self):
        backend = ShardedBackend(workers=8, resources=r3_4xlarge(8),
                                 overhead_per_stage=0.0)
        fitted = optimize(text_pipeline,
                          [ShardingPass(workers=8)]).execute(backend=backend)
        sweep = plan_scaling_sweep(fitted, [8, 16, 32, 64])
        totals = [sum(sweep[w].values()) for w in (8, 16, 32, 64)]
        assert sorted(sweep) == [8, 16, 32, 64]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_sweep_requires_sharded_run(self):
        fitted = optimize(text_pipeline).execute()
        with pytest.raises(ValueError, match="no simulated stages"):
            plan_scaling_sweep(fitted, [8, 16])

    def test_training_flow_gather_pays_coordination(self):
        """A gather feeding an estimator gets a network-only stage; the
        never-executed inference-path sink gather does not."""
        from repro.nodes.numeric import VectorCombiner

        def builder(ctx):
            wl = WORKLOAD
            data = wl.train_data(ctx)
            labels = wl.train_label_vectors(ctx)
            b1 = (Pipeline.identity().and_then(Tokenizer())
                  .and_then(TermFrequency(lambda c: 1.0))
                  .and_then(CommonSparseFeatures(100), data))
            b2 = (Pipeline.identity().and_then(LowerCase())
                  .and_then(Tokenizer())
                  .and_then(TermFrequency(lambda c: 1.0))
                  .and_then(CommonSparseFeatures(50), data))
            return (Pipeline.gather([b1, b2]).and_then(VectorCombiner())
                    .and_then(LinearSolver(), data, labels))

        fitted = optimize(builder).execute(
            backend=ShardedBackend(workers=8, resources=r3_4xlarge(8)))
        gathers = [s for s in fitted.training_report.simulated_stages
                   if s.name == "gather"]
        assert len(gathers) == 1
        assert gathers[0].profile_fn(1).network == 0.0
        assert gathers[0].profile_fn(8).network > 0.0

        # The branching fixture's gather sits on the inference path only
        # and must not be priced.
        sharded = optimize(branching_pipeline).execute(
            backend=ShardedBackend(workers=8, resources=r3_4xlarge(8)))
        assert all(s.name != "gather"
                   for s in sharded.training_report.simulated_stages)

    def test_apply_batch_shards_from_training_run(self):
        """workers=None re-partitions inference using the trained count."""
        backend = ShardedBackend()
        plan = optimize(text_pipeline, [ShardingPass(workers=8)])
        fitted = plan.execute(backend=backend)
        out = fitted.apply_dataset(WORKLOAD.test_data(Context()),
                                   backend=backend)
        assert out.num_partitions == 8
        serial = fitted.apply_dataset(WORKLOAD.test_data(Context()))
        assert comparable(out.collect()) == comparable(serial.collect())


class SleepyTransformer(Transformer):
    """Module-level (spawn-picklable) transformer that wedges a worker."""

    def __init__(self, seconds: float = 2.0):
        self.seconds = seconds

    def apply(self, item):
        time.sleep(self.seconds)
        return {"term": 1.0}


class UnpicklableTransformer(Transformer):
    """Carries a live lock, so its flow can never ship to a worker."""

    def __init__(self):
        self.lock = threading.Lock()

    def apply(self, item):
        return {str(item): 1.0}


class TestProcessPoolBackend:
    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBackend(workers=0)

    def test_workers_1_degenerates_to_serial(self):
        """One worker runs the serial reference path — no pool, identical
        predictions, and the report still names the backend."""
        fitted = optimize(text_pipeline).execute(
            backend=ProcessPoolBackend(workers=1))
        report = fitted.training_report
        assert report.backend == "process[workers=1]"
        assert report.process_workers == 1
        assert not report.process_stat_merged
        assert not report.process_gathered
        reference = optimize(text_pipeline).execute()
        got = comparable(fitted.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        want = comparable(reference.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        assert got == want

    def test_workers_default_to_sharding_pass(self):
        plan = optimize(text_pipeline, [ShardingPass(workers=2)])
        backend = ProcessPoolBackend(task_timeout=PROCESS_TIMEOUT)
        fitted = plan.execute(backend=backend)
        assert fitted.training_report.process_workers == 2
        assert fitted.training_report.backend == "process[workers=2]"

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registry_workload_parity(self, name):
        """Every registry workload trains byte-identically in processes."""
        pipe, items = SCENARIOS[name](Context())
        reference = pipe.fit(level="none")
        expected = comparable([reference.apply(x) for x in items])

        backend = ProcessPoolBackend(workers=2,
                                     task_timeout=PROCESS_TIMEOUT)
        pipe2, _ = SCENARIOS[name](Context())
        fitted = pipe2.fit(level="none", backend=backend)
        report = fitted.training_report
        assert report.process_workers == 2
        assert not report.process_fallback, report.process_fallback
        assert comparable([fitted.apply(x) for x in items]) == expected
        batch = fitted.apply_dataset(
            Context().parallelize(items, 4), backend=backend)
        assert comparable(batch.collect()) == expected

    def test_stat_merge_and_gather_paths_both_used(self):
        """The text pipeline exercises both merge strategies: frequency
        selection merges counters, the iterative solver gathers rows."""
        backend = ProcessPoolBackend(workers=2,
                                     task_timeout=PROCESS_TIMEOUT)
        fitted = optimize(text_pipeline).execute(backend=backend)
        report = fitted.training_report
        assert "CommonSparseFeatures" in report.process_stat_merged
        assert "LinearSolver" in report.process_gathered
        assert not report.process_fallback

    def test_merge_stats_disabled_still_identical(self):
        backend = ProcessPoolBackend(workers=2, merge_stats=False,
                                     task_timeout=PROCESS_TIMEOUT)
        fitted = optimize(text_pipeline).execute(backend=backend)
        report = fitted.training_report
        assert not report.process_stat_merged
        assert "CommonSparseFeatures" in report.process_gathered
        reference = optimize(text_pipeline).execute()
        got = comparable(fitted.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        want = comparable(reference.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        assert got == want

    def test_unpicklable_flow_falls_back_to_serial(self):
        """An operator that cannot cross the process boundary degrades to
        in-parent execution instead of failing the fit."""
        ctx = Context()
        data = ctx.parallelize([f"doc {i}" for i in range(16)], 4)
        pipe = (Pipeline.identity()
                .and_then(UnpicklableTransformer())
                .and_then(CommonSparseFeatures(4), data))
        plan = Optimizer(passes_for_level("none")).optimize(pipe)
        backend = ProcessPoolBackend(workers=2,
                                     task_timeout=PROCESS_TIMEOUT)
        fitted = plan.execute(backend=backend)
        report = fitted.training_report
        assert report.process_fallback
        assert "CommonSparseFeatures" in report.process_fallback[0]
        assert fitted.apply("doc 3") is not None

    def test_wave_timeout_raises_instead_of_hanging(self):
        """The deadlock/timeout guard: a wedged worker turns into a
        bounded RuntimeError, not a hung fit."""
        ctx = Context()
        data = ctx.parallelize(list(range(8)), 4)
        pipe = (Pipeline.identity()
                .and_then(SleepyTransformer(seconds=5.0))
                .and_then(CommonSparseFeatures(2), data))
        plan = Optimizer(passes_for_level("none")).optimize(pipe)
        backend = ProcessPoolBackend(workers=2, task_timeout=0.5,
                                     reuse_pool=False)
        result = {}

        def run():
            try:
                plan.execute(backend=backend)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                result["error"] = exc

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=120)
        backend.close()
        assert not worker.is_alive(), "timed-out wave hung the fit"
        assert isinstance(result.get("error"), RuntimeError)
        assert "timed out" in str(result["error"])

    def test_report_times_cover_worker_nodes(self):
        backend = ProcessPoolBackend(workers=2,
                                     task_timeout=PROCESS_TIMEOUT)
        fitted = optimize(text_pipeline).execute(backend=backend)
        report = fitted.training_report
        # Featurization executed in workers still lands in node_seconds;
        # estimator fits are timed in the parent.
        assert len(report.node_seconds) >= 4
        assert len(report.estimator_seconds) == 2
        assert all(t >= 0.0 for t in report.node_seconds.values())


class TestActorBackend:
    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ActorBackend(workers=0)

    def test_workers_1_degenerates_to_serial(self):
        fitted = optimize(text_pipeline).execute(
            backend=ActorBackend(workers=1))
        report = fitted.training_report
        assert report.backend == "actors[workers=1]"
        assert report.process_workers == 1
        assert not report.process_stat_merged
        assert not report.actor_iterative
        reference = optimize(text_pipeline).execute()
        got = comparable(fitted.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        want = comparable(reference.apply_dataset(
            WORKLOAD.test_data(Context())).collect())
        assert got == want

    def test_workers_default_to_sharding_pass(self):
        plan = optimize(text_pipeline, [ShardingPass(workers=2)])
        backend = ActorBackend(task_timeout=PROCESS_TIMEOUT)
        fitted = plan.execute(backend=backend)
        assert fitted.training_report.process_workers == 2
        assert fitted.training_report.backend == "actors[workers=2]"

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registry_workload_parity(self, name):
        """Every registry workload — including the iterative-solver
        heads — trains byte-identically on the actor runtime."""
        pipe, items = SCENARIOS[name](Context())
        reference = pipe.fit(level="none")
        expected = comparable([reference.apply(x) for x in items])

        backend = ActorBackend(workers=2, task_timeout=PROCESS_TIMEOUT)
        pipe2, _ = SCENARIOS[name](Context())
        fitted = pipe2.fit(level="none", backend=backend)
        report = fitted.training_report
        assert report.process_workers == 2
        assert not report.process_fallback, report.process_fallback
        assert comparable([fitted.apply(x) for x in items]) == expected
        batch = fitted.apply_dataset(
            Context().parallelize(items, 4), backend=backend)
        assert comparable(batch.collect()) == expected

    @pytest.mark.parametrize("name", ["timit_kmeans", "timit_gmm",
                                      "timit_logistic"])
    def test_iterative_solvers_run_in_worker(self, name):
        """Pass-based estimators never gather: the featurized shard
        stays staged in the workers and only statistics cross."""
        pipe, _items = SCENARIOS[name](Context())
        backend = ActorBackend(workers=2, task_timeout=PROCESS_TIMEOUT)
        fitted = pipe.fit(level="none", backend=backend)
        report = fitted.training_report
        assert report.actor_iterative, "solver did not run in-worker"
        assert not report.process_gathered
        assert not report.process_fallback

    def test_second_fit_hits_shard_state_cache(self):
        """Cross-fit reuse: the same pool serving a second fit over the
        same data serves featurized shards from worker caches instead of
        recomputing (content-addressed op keys, not node identity)."""
        with ActorBackend(workers=2, task_timeout=PROCESS_TIMEOUT,
                          reuse_pool=False) as backend:
            first = optimize(text_pipeline).execute(backend=backend)
            second = optimize(text_pipeline).execute(backend=backend)
        cold, warm = (first.training_report, second.training_report)
        assert cold.shard_state_misses > 0
        assert warm.shard_state_hits > 0
        assert warm.shard_state_misses == 0
        assert warm.bytes_shipped < cold.bytes_shipped
        test_data = WORKLOAD.test_data(Context())
        assert (comparable(second.apply_dataset(test_data).collect())
                == comparable(first.apply_dataset(test_data).collect()))

    def test_unpicklable_flow_falls_back_to_serial(self):
        ctx = Context()
        data = ctx.parallelize([f"doc {i}" for i in range(16)], 4)
        pipe = (Pipeline.identity()
                .and_then(UnpicklableTransformer())
                .and_then(CommonSparseFeatures(4), data))
        plan = Optimizer(passes_for_level("none")).optimize(pipe)
        backend = ActorBackend(workers=2, task_timeout=PROCESS_TIMEOUT)
        fitted = plan.execute(backend=backend)
        report = fitted.training_report
        assert report.process_fallback
        assert "CommonSparseFeatures" in report.process_fallback[0]
        assert fitted.apply("doc 3") is not None

    def test_wave_timeout_raises_instead_of_hanging(self):
        ctx = Context()
        data = ctx.parallelize(list(range(8)), 4)
        pipe = (Pipeline.identity()
                .and_then(SleepyTransformer(seconds=8.0))
                .and_then(CommonSparseFeatures(2), data))
        plan = Optimizer(passes_for_level("none")).optimize(pipe)
        backend = ActorBackend(workers=2, task_timeout=0.5,
                               max_restarts=0, reuse_pool=False)
        result = {}

        def run():
            try:
                plan.execute(backend=backend)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                result["error"] = exc

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=120)
        backend.close()
        assert not worker.is_alive(), "timed-out wave hung the fit"
        assert isinstance(result.get("error"), RuntimeError)
        assert "max_restarts" in str(result["error"])


class TestAutoBackendRecommendation:
    def test_hint_mapping(self):
        sharding = ShardingPass(workers="auto")
        assert sharding._recommend_backend(1, 0.0) == "local"
        assert sharding._recommend_backend(4, 0.01) == "process"
        assert sharding._recommend_backend(4, 0.5) == "pipelined"

    def test_hint_mapping_amortizes_iterative_passes(self):
        """Persistent workers pay shard movement once per fit, not once
        per pass: the network share is judged amortized, so iterative
        workloads flip to the actor runtime."""
        sharding = ShardingPass(workers="auto")
        # 0.5 network share over 10 passes amortizes to 0.05 <= 0.15.
        assert sharding._recommend_backend(4, 0.5, 10) == "actors"
        assert sharding._recommend_backend(4, 0.01, 20) == "actors"
        # Two passes are not enough to amortize 0.5 below the threshold.
        assert sharding._recommend_backend(4, 0.5, 2) == "pipelined"
        # One worker stays serial no matter how iterative the solver is.
        assert sharding._recommend_backend(1, 0.01, 50) == "local"
        # Non-iterative plans keep the stateless recommendation.
        assert sharding._recommend_backend(4, 0.01, 1) == "process"

    def test_auto_recommends_actors_for_iterative_workload(self):
        """A k-means-headed plan profiles as iterative (weight > 1), so
        workers="auto" recommends the actor runtime and ``backend="auto"``
        executes on it."""
        rng = np.random.default_rng(3)
        pts = [rng.normal(size=16) for _ in range(120)]

        def builder(ctx):
            data = ctx.parallelize(pts, 4)
            return (Pipeline.identity()
                    .and_then(StandardScaler(), data)
                    .and_then(KMeansEstimator(3, max_iter=10, seed=0),
                              data))

        passes = passes_for_level("full", sample_sizes=(20, 40))
        passes.append(ShardingPass(workers="auto", max_workers=4))
        plan = Optimizer(passes).optimize(builder(Context()),
                                          resources=r3_4xlarge(4))
        assert plan.state.shard_workers >= 2
        assert plan.state.shard_backend == "actors"
        assert "recommended backend: actors" in plan.explain()
        fitted = plan.execute(backend="auto")
        report = fitted.training_report
        assert report.backend.startswith("actors")
        assert "KMeansEstimator" in report.actor_iterative

    def test_auto_recommends_process_when_network_is_cheap(self):
        """Featurization-dominated text plan, tiny coordination bytes:
        the auto-chooser recommends multi-process execution."""
        passes = passes_for_level("full", sample_sizes=(20, 40))
        passes.append(ShardingPass(workers="auto", max_workers=4))
        plan = Optimizer(passes).optimize(text_pipeline(Context()),
                                          resources=r3_4xlarge(4))
        assert plan.state.shard_workers >= 2
        assert plan.state.shard_backend == "process"
        assert "recommended backend: process" in plan.explain()

    def test_execute_auto_honours_recommendation(self):
        passes = passes_for_level("full", sample_sizes=(20, 40))
        passes.append(ShardingPass(workers="auto", max_workers=2))
        plan = Optimizer(passes).optimize(text_pipeline(Context()),
                                          resources=r3_4xlarge(2))
        fitted = plan.execute(backend="auto")
        assert fitted.training_report.backend.startswith(
            plan.state.shard_backend)

    def test_execute_auto_without_recommendation_is_local(self):
        fitted = optimize(text_pipeline).execute(backend="auto")
        assert fitted.training_report.backend == "local"


class TestShardingPass:
    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ShardingPass(workers=0)

    def test_decisions_reach_explain(self):
        plan = optimize(text_pipeline, [ShardingPass(workers=8)])
        text = plan.explain()
        assert "ShardingPass" in text
        assert "workers=8" in text
        assert "sharding: 8 workers" in text
        assert "coordinated=" in text

    def test_roles_recorded_on_state(self):
        plan = optimize(branching_pipeline, [ShardingPass(workers=4)])
        state = plan.state
        assert state.shard_workers == 4
        kinds = {n.id: n.kind for n in g.ancestors([state.sink])}
        for nid, role in state.shard_roles.items():
            if kinds[nid] in (g.ESTIMATOR, g.GATHER):
                assert role == ShardingPass.COORDINATED
            else:
                assert role == ShardingPass.DATA_PARALLEL

    def test_workers_default_from_resources(self):
        passes = passes_for_level("none")
        passes.append(ShardingPass())
        plan = Optimizer(passes).optimize(text_pipeline(Context()),
                                          resources=r3_4xlarge(32))
        assert plan.state.shard_workers == 32


class TestExclusiveTimerThreadSafety:
    def test_per_thread_attribution(self):
        """Nested time on one thread must not leak into another's frame."""
        timer = ExclusiveTimer()

        def inner():
            time.sleep(0.03)

        wrapped_inner = timer.wrap("inner", inner)

        def outer():
            wrapped_inner()
            time.sleep(0.03)

        def other():
            time.sleep(0.08)

        threads = [threading.Thread(target=timer.wrap("outer", outer)),
                   threading.Thread(target=timer.wrap("other", other))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # With a shared stack, "other" (started second, finished last)
        # would absorb "outer"'s nested time or crash on pop.
        assert timer.times["inner"] == pytest.approx(0.03, abs=0.02)
        assert timer.times["outer"] == pytest.approx(0.03, abs=0.02)
        assert timer.times["other"] == pytest.approx(0.08, abs=0.02)

    def test_concurrent_accumulation_no_loss(self):
        """4 threads x 20 timed calls must all land in the accumulator."""
        timer = ExclusiveTimer()
        calls_per_thread, sleep = 20, 0.002
        fn = timer.wrap("x", lambda: time.sleep(sleep))

        def hammer():
            for _ in range(calls_per_thread):
                fn()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Dropped updates would leave the total below the slept floor.
        assert timer.times["x"] >= 4 * calls_per_thread * sleep
