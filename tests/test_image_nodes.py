"""Tests for image operators."""

import numpy as np
import pytest

from repro.dataset import Context
from repro.nodes.images import (
    GrayScaler,
    LCSExtractor,
    PatchExtractor,
    Pooler,
    RandomPatchSampler,
    SIFTExtractor,
    SymmetricRectifier,
    Windower,
    ZCAWhitener,
)


def _image(h=32, w=32, c=3, seed=0):
    return np.random.default_rng(seed).random((h, w, c))


class TestGrayScaler:
    def test_output_2d(self):
        gray = GrayScaler().apply(_image())
        assert gray.shape == (32, 32)

    def test_constant_image(self):
        img = np.full((8, 8, 3), 0.5)
        np.testing.assert_allclose(GrayScaler().apply(img), 0.5)

    def test_single_channel_passthrough(self):
        img = np.random.default_rng(0).random((8, 8))
        np.testing.assert_allclose(GrayScaler().apply(img), img)


class TestPatchExtractor:
    def test_count_and_dim(self):
        patches = PatchExtractor(4, stride=4).apply(_image(16, 16, 3))
        assert patches.shape == (16, 48)  # 4x4 grid of 4x4x3 patches

    def test_stride_one(self):
        patches = PatchExtractor(3, stride=1).apply(_image(8, 8, 1))
        assert patches.shape == (36, 9)

    def test_content_matches_manual_slice(self):
        img = _image(8, 8, 1, seed=1)
        patches = PatchExtractor(3, stride=1).apply(img)
        np.testing.assert_allclose(patches[0],
                                   img[0:3, 0:3, :].ravel())

    def test_too_small(self):
        with pytest.raises(ValueError, match="smaller"):
            PatchExtractor(10).apply(_image(4, 4, 1))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PatchExtractor(0)


class TestRandomPatchSampler:
    def test_shape(self):
        out = RandomPatchSampler(5, 12, seed=0).apply(_image())
        assert out.shape == (12, 75)

    def test_deterministic_per_image(self):
        img = _image(seed=2)
        a = RandomPatchSampler(5, 6, seed=1).apply(img)
        b = RandomPatchSampler(5, 6, seed=1).apply(img)
        np.testing.assert_array_equal(a, b)


class TestWindower:
    def test_window_count(self):
        windows = Windower(8).apply(_image(16, 16, 3))
        assert len(windows) == 4
        assert windows[0].shape == (8, 8, 3)


class TestSIFT:
    def test_descriptor_shape(self):
        desc = SIFTExtractor(cell=4, stride=8).apply(_image(32, 32, 1))
        assert desc.shape[1] == 128
        assert desc.shape[0] == 9  # 3x3 grid of 16px patches at stride 8

    def test_color_input_grayscaled(self):
        desc = SIFTExtractor().apply(_image(32, 32, 3))
        assert desc.shape[1] == 128

    def test_descriptors_normalized(self):
        desc = SIFTExtractor().apply(_image(48, 48, 1, seed=3))
        norms = np.linalg.norm(desc, axis=1)
        assert np.all(norms < 1.01)
        # Clipped at 0.2 then renormalized, so entries stay bounded.
        assert np.all(desc <= 1.0)
        assert np.all(desc >= 0.0)

    def test_oriented_structure_activates_matching_bins(self):
        """A horizontal gradient concentrates energy in few bins."""
        img = np.tile(np.linspace(0, 1, 32), (32, 1))
        desc = SIFTExtractor().apply(img)
        hist = desc.sum(axis=0).reshape(-1, 8).sum(axis=0)
        assert hist.max() > 3 * np.median(hist + 1e-9)

    def test_too_small_image(self):
        with pytest.raises(ValueError, match="smaller"):
            SIFTExtractor(cell=4).apply(np.zeros((8, 8)))


class TestLCS:
    def test_shape(self):
        desc = LCSExtractor(patch=16, grid=4, stride=16).apply(
            _image(32, 32, 3))
        assert desc.shape == (4, 96)  # 2x2 patches, 4*4*3*2 dims

    def test_constant_patch_zero_std(self):
        img = np.full((16, 16, 3), 0.7)
        desc = LCSExtractor(patch=16, grid=4, stride=16).apply(img)
        means, stds = desc[0, :48], desc[0, 48:]
        np.testing.assert_allclose(means, 0.7)
        np.testing.assert_allclose(stds, 0.0, atol=1e-12)

    def test_indivisible_grid(self):
        with pytest.raises(ValueError, match="divisible"):
            LCSExtractor(patch=10, grid=4)


class TestZCA:
    def test_whitens_covariance(self):
        ctx = Context()
        rng = np.random.default_rng(0)
        # Correlated 2-D data.
        base = rng.standard_normal((2000, 2))
        mix = np.array([[2.0, 1.5], [0.0, 0.5]])
        rows = list(base @ mix)
        whitener = ZCAWhitener(eps=1e-8).fit(ctx.parallelize(rows, 4))
        out = whitener.apply(np.vstack(rows))
        cov = np.cov(out, rowvar=False)
        np.testing.assert_allclose(cov, np.eye(2), atol=0.15)

    def test_vector_input(self):
        ctx = Context()
        rows = [np.random.default_rng(i).random(3) for i in range(50)]
        whitener = ZCAWhitener().fit(ctx.parallelize(rows, 2))
        out = whitener.apply(rows[0])
        assert out.shape == (3,)

    def test_empty_raises(self):
        ctx = Context()
        with pytest.raises(ValueError, match="empty"):
            ZCAWhitener().fit(ctx.parallelize([], 1))


class TestRectifierAndPooler:
    def test_rectifier_doubles_channels(self):
        fmap = np.random.default_rng(0).standard_normal((4, 4, 3))
        out = SymmetricRectifier(0.1).apply(fmap)
        assert out.shape == (4, 4, 6)
        assert np.all(out >= 0)

    def test_rectifier_split_is_consistent(self):
        x = np.array([[[1.0, -2.0]]])
        out = SymmetricRectifier(0.5).apply(x)
        np.testing.assert_allclose(out.ravel(), [0.5, 0.0, 0.0, 1.5])

    def test_pooler_sum(self):
        fmap = np.ones((4, 4, 2))
        out = Pooler(2, "sum").apply(fmap)
        assert out.shape == (8,)
        np.testing.assert_allclose(out, 4.0)

    def test_pooler_max(self):
        fmap = np.zeros((4, 4, 1))
        fmap[0, 0, 0] = 9.0
        out = Pooler(2, "max").apply(fmap)
        assert out[0] == 9.0

    def test_pooler_mean(self):
        fmap = np.ones((4, 4, 1)) * 3
        np.testing.assert_allclose(Pooler(2, "mean").apply(fmap), 3.0)

    def test_pooler_2d_input(self):
        out = Pooler(2, "sum").apply(np.ones((4, 4)))
        assert out.shape == (4,)

    def test_pooler_invalid_op(self):
        with pytest.raises(ValueError, match="op must"):
            Pooler(2, "median")

    def test_pooler_grid_too_large(self):
        with pytest.raises(ValueError, match="too small"):
            Pooler(8).apply(np.ones((4, 4, 1)))
