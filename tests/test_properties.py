"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.operators import Transformer
from repro.core.profiler import NodeProfile, PipelineProfile
from repro.cost.profile import CostProfile
from repro.dataset import Context
from repro.linalg.tsqr import tsqr_r


# ----------------------------------------------------------------------
# Dataset vs list semantics
# ----------------------------------------------------------------------

items_strategy = st.lists(st.integers(-1000, 1000), max_size=60)
partitions_strategy = st.integers(1, 8)


class TestDatasetSemantics:
    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_collect_roundtrip(self, items, parts):
        ctx = Context()
        assert ctx.parallelize(items, parts).collect() == items

    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_map_matches_list_map(self, items, parts):
        ctx = Context()
        out = ctx.parallelize(items, parts).map(lambda x: x * 2 + 1).collect()
        assert out == [x * 2 + 1 for x in items]

    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_list_filter(self, items, parts):
        ctx = Context()
        out = ctx.parallelize(items, parts).filter(lambda x: x % 3 == 0)
        assert out.collect() == [x for x in items if x % 3 == 0]

    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_count_matches_len(self, items, parts):
        ctx = Context()
        assert ctx.parallelize(items, parts).count() == len(items)

    @given(items=items_strategy, parts=partitions_strategy,
           n=st.integers(0, 70))
    @settings(max_examples=40, deadline=None)
    def test_take_is_prefix(self, items, parts, n):
        ctx = Context()
        assert ctx.parallelize(items, parts).take(n) == items[:n]

    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_caching_does_not_change_results(self, items, parts):
        ctx = Context()
        ds = ctx.parallelize(items, parts).map(lambda x: x - 7)
        plain = ds.collect()
        ds.cache()
        assert ds.collect() == plain
        assert ds.collect() == plain

    @given(items=items_strategy, parts=partitions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tree_aggregate_equals_sum(self, items, parts):
        ctx = Context()
        total = ctx.parallelize(items, parts).tree_aggregate(
            0, lambda a, x: a + x, lambda a, b: a + b)
        assert total == sum(items)


# ----------------------------------------------------------------------
# CostProfile algebra
# ----------------------------------------------------------------------

profile_strategy = st.builds(
    CostProfile,
    flops=st.floats(0, 1e15, allow_nan=False),
    bytes=st.floats(0, 1e15, allow_nan=False),
    network=st.floats(0, 1e15, allow_nan=False))


class TestCostProfileAlgebra:
    @given(a=profile_strategy, b=profile_strategy)
    @settings(max_examples=50)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(a=profile_strategy)
    @settings(max_examples=50)
    def test_zero_identity(self, a):
        assert a + CostProfile.zero() == a

    @given(a=profile_strategy, s=st.floats(0, 100, allow_nan=False))
    @settings(max_examples=50)
    def test_scaling_distributes(self, a, s):
        left = (a + a) * s
        right = a * s + a * s
        assert np.isclose(left.flops, right.flops)
        assert np.isclose(left.bytes, right.bytes)


# ----------------------------------------------------------------------
# TSQR invariant: R^T R == A^T A for any block partitioning
# ----------------------------------------------------------------------

class TestTSQRProperty:
    @given(seed=st.integers(0, 10_000), n_blocks=st.integers(1, 6),
           rows=st.integers(1, 12), cols=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_gram_preserved(self, seed, n_blocks, rows, cols):
        rng = np.random.default_rng(seed)
        blocks = [rng.standard_normal((rows, cols))
                  for _ in range(n_blocks)]
        a = np.vstack(blocks)
        r = tsqr_r(blocks)
        np.testing.assert_allclose(r.T @ r, a.T @ a, atol=1e-7)

    @given(seed=st.integers(0, 10_000), split=st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_partitioning_invariance(self, seed, split):
        """R (up to sign) should not depend on how rows are partitioned."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((10, 3))
        one_block = tsqr_r([a])
        two_blocks = tsqr_r([a[:split], a[split:]])
        np.testing.assert_allclose(np.abs(one_block), np.abs(two_blocks),
                                   atol=1e-7)


# ----------------------------------------------------------------------
# Materialization: greedy vs exact on random DAG chains
# ----------------------------------------------------------------------

class _Op(Transformer):
    def __init__(self, weight=1):
        self.weight = weight

    def apply(self, x):
        return x


def _random_problem(rng, n_nodes):
    """A random chain with random weights/times/sizes."""
    src = g.source("d")
    nodes = [src]
    node = src
    for _ in range(n_nodes):
        node = g.OpNode(g.TRANSFORMER, _Op(int(rng.integers(1, 6))), (node,))
        nodes.append(node)
    profile = PipelineProfile()
    for n in nodes:
        profile.nodes[n.id] = NodeProfile(
            node=n, t_seconds=float(rng.uniform(0.1, 10)),
            size_bytes=float(rng.uniform(1, 100)), stats=None,
            weight=n.weight)
    return mat.MaterializationProblem([node], profile)


class TestGreedyQuality:
    @given(seed=st.integers(0, 5000), n_nodes=st.integers(1, 6),
           budget=st.floats(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_greedy_between_exact_and_uncached(self, seed, n_nodes, budget):
        rng = np.random.default_rng(seed)
        problem = _random_problem(rng, n_nodes)
        uncached = problem.estimate_runtime(set())
        greedy = problem.estimate_runtime(
            mat.greedy_cache_set(problem, budget))
        exact = problem.estimate_runtime(
            mat.exact_cache_set(problem, budget))
        assert exact <= greedy + 1e-9
        assert greedy <= uncached + 1e-9

    @given(seed=st.integers(0, 5000), n_nodes=st.integers(1, 6),
           budget=st.floats(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_greedy_respects_budget(self, seed, n_nodes, budget):
        rng = np.random.default_rng(seed)
        problem = _random_problem(rng, n_nodes)
        cache = mat.greedy_cache_set(problem, budget)
        assert sum(problem.size[i] for i in cache) <= budget + 1e-9

    @given(seed=st.integers(0, 5000), n_nodes=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_more_memory_never_hurts(self, seed, n_nodes):
        rng = np.random.default_rng(seed)
        problem = _random_problem(rng, n_nodes)
        t_small = problem.estimate_runtime(
            mat.greedy_cache_set(problem, 50.0))
        t_large = problem.estimate_runtime(
            mat.greedy_cache_set(problem, 5000.0))
        assert t_large <= t_small + 1e-9
