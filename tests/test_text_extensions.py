"""Tests for stop words, stemming, and TF-IDF."""

import pytest

from repro.dataset import Context
from repro.nodes.text import (
    IDFEstimator,
    StopWordRemover,
    SuffixStemmer,
    TermFrequency,
    Tokenizer,
)


class TestStopWords:
    def test_removes_common_words(self):
        out = StopWordRemover().apply(["the", "great", "product", "is",
                                       "good"])
        assert out == ["great", "product", "good"]

    def test_case_insensitive(self):
        assert StopWordRemover().apply(["The", "THE"]) == []

    def test_extra_words(self):
        remover = StopWordRemover(extra_words=["product"])
        assert remover.apply(["product", "good"]) == ["good"]

    def test_empty_input(self):
        assert StopWordRemover().apply([]) == []


class TestStemmer:
    def test_strips_suffixes(self):
        stemmer = SuffixStemmer()
        assert stemmer.apply(["loved", "loving", "loves"]) == \
            ["lov", "lov", "lov"]

    def test_respects_min_stem(self):
        # "red" would become "r" with min_stem=1; default 3 keeps it.
        assert SuffixStemmer().apply(["red"]) == ["red"]

    def test_only_longest_suffix_stripped_once(self):
        out = SuffixStemmer().apply(["nationalization"])
        assert out == ["national"]  # "ization" stripped, nothing further

    def test_unsuffixed_unchanged(self):
        assert SuffixStemmer().apply(["cat", "dog"]) == ["cat", "dog"]


class TestIDF:
    def _fit(self, docs):
        ctx = Context()
        tokens = [TermFrequency().apply(Tokenizer().apply(d)) for d in docs]
        return IDFEstimator().fit(ctx.parallelize(tokens, 2)), tokens

    def test_rare_terms_upweighted(self):
        docs = ["common common rare"] + ["common"] * 9
        idf, tokens = self._fit(docs)
        out = idf.apply({"common": 1.0, "rare": 1.0})
        assert out["rare"] > out["common"]

    def test_unseen_term_gets_max_weight(self):
        idf, _ = self._fit(["a b", "a c"])
        out = idf.apply({"zzz": 1.0, "a": 1.0})
        assert out["zzz"] > out["a"]

    def test_weights_positive(self):
        idf, tokens = self._fit(["x y z", "x y", "x"])
        out = idf.apply(tokens[0])
        assert all(v > 0 for v in out.values())

    def test_document_count_correct_across_partitions(self):
        """Regression: the aggregate zero must not be shared-mutated."""
        ctx = Context()
        tokens = [{"a": 1.0}] * 10
        idf = IDFEstimator().fit(ctx.parallelize(tokens, 5))

        # df(a) = 10, N = 10 -> idf = log(11/11) + 1 = 1.
        assert idf.apply({"a": 2.0})["a"] == pytest.approx(2.0)
