"""Tests for the Figure-12 stage models."""

import pytest

from repro.cluster.resources import r3_4xlarge
from repro.scaling import (
    PIPELINE_STAGES,
    amazon_stages,
    imagenet_stages,
    pipeline_scaling,
    timit_stages,
)


class TestStageBuilders:
    @pytest.mark.parametrize("builder", [amazon_stages, timit_stages,
                                         imagenet_stages])
    def test_stage_categories(self, builder):
        stages = builder()
        categories = {s.category for s in stages}
        assert {"Loading", "Featurization", "Model Solve",
                "Model Eval"} <= categories

    def test_profiles_shrink_with_workers(self):
        for stage in imagenet_stages():
            p8 = stage.profile_fn(8)
            p64 = stage.profile_fn(64)
            assert p64.flops <= p8.flops
            assert p64.bytes <= p8.bytes

    def test_solve_network_grows_with_workers(self):
        solve = [s for s in timit_stages() if s.category == "Model Solve"][0]
        assert solve.profile_fn(128).network > solve.profile_fn(8).network


class TestPipelineScaling:
    def test_unknown_pipeline(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            pipeline_scaling("mnist", [8])

    def test_registry_complete(self):
        assert set(PIPELINE_STAGES) == {"amazon", "timit", "imagenet"}

    def test_totals_monotone(self):
        for name in PIPELINE_STAGES:
            result = pipeline_scaling(name, [8, 16, 32, 64, 128])
            totals = [sum(result[w].values()) for w in (8, 16, 32, 64, 128)]
            assert all(a > b for a, b in zip(totals, totals[1:])), name

    def test_dominant_stages_match_paper(self):
        amazon = pipeline_scaling("amazon", [8])[8]
        timit = pipeline_scaling("timit", [8])[8]
        imagenet = pipeline_scaling("imagenet", [8])[8]
        assert amazon["Featurization"] > amazon["Model Solve"]
        assert timit["Model Solve"] > timit["Featurization"]
        assert imagenet["Featurization"] > imagenet["Model Solve"]

    def test_custom_resources(self):
        fast = r3_4xlarge()
        result = pipeline_scaling("amazon", [8], base=fast)
        assert sum(result[8].values()) > 0
