"""Tests for random features, logistic regression, and filter learning."""

import numpy as np
import pytest

from repro.dataset import Context
from repro.nodes.convolution import Convolver
from repro.nodes.learning.filter_learning import ConvolutionalFilterLearner
from repro.nodes.learning.logistic import LogisticRegressionEstimator
from repro.nodes.learning.random_features import (
    CosineRandomFeatures,
    RandomFeaturesTransformer,
)


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


class TestRandomFeatures:
    def test_output_dim(self, ctx):
        data = ctx.parallelize([np.ones(5)] * 10, 2)
        t = CosineRandomFeatures(64, gamma=0.5, seed=0).fit(data)
        assert t.apply(np.ones(5)).shape == (64,)

    def test_kernel_approximation(self, ctx):
        """z(x).z(y) approximates the RBF kernel exp(-gamma ||x-y||^2 / 2)."""
        rng = np.random.default_rng(0)
        gamma = 0.3
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        data = ctx.parallelize([x, y], 1)
        t = CosineRandomFeatures(20_000, gamma=gamma, seed=1).fit(data)
        approx = float(t.apply(x) @ t.apply(y))
        exact = float(np.exp(-gamma * np.sum((x - y) ** 2) / 2))
        assert approx == pytest.approx(exact, abs=0.03)

    def test_deterministic_with_seed(self, ctx):
        data = ctx.parallelize([np.ones(4)] * 5, 1)
        a = CosineRandomFeatures(16, seed=3).fit(data)
        b = CosineRandomFeatures(16, seed=3).fit(data)
        np.testing.assert_allclose(a.w, b.w)

    def test_different_seeds_differ(self, ctx):
        data = ctx.parallelize([np.ones(4)] * 5, 1)
        a = CosineRandomFeatures(16, seed=1).fit(data)
        b = CosineRandomFeatures(16, seed=2).fit(data)
        assert not np.allclose(a.w, b.w)

    def test_partition_matches_single(self, ctx):
        rng = np.random.default_rng(0)
        rows = [rng.standard_normal(6) for _ in range(5)]
        t = RandomFeaturesTransformer(rng.standard_normal((6, 8)),
                                      rng.uniform(0, 6, 8))
        batch = t.apply_partition(rows)
        np.testing.assert_allclose(np.vstack(batch),
                                   np.vstack([t.apply(r) for r in rows]))

    def test_invalid_num_features(self):
        with pytest.raises(ValueError, match="num_features"):
            CosineRandomFeatures(0)

    def test_bounded_output(self, ctx):
        data = ctx.parallelize([np.ones(4) * 100] * 3, 1)
        t = CosineRandomFeatures(32, seed=0).fit(data)
        out = t.apply(np.ones(4) * 100)
        assert np.all(np.abs(out) <= np.sqrt(2.0 / 32) + 1e-12)


class TestLogisticRegression:
    def _problem(self, ctx, n=300, d=6, seed=0):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((d, 3)) * 2
        x = rng.standard_normal((n, d))
        y = np.argmax(x @ w + 0.1 * rng.standard_normal((n, 3)), axis=1)
        one_hot = -np.ones((n, 3))
        one_hot[np.arange(n), y] = 1.0
        data = ctx.parallelize(list(x), 4)
        labels = ctx.parallelize(list(one_hot), 4)
        return data, labels, x, y

    def test_learns_separable_problem(self, ctx):
        data, labels, x, y = self._problem(ctx)
        model = LogisticRegressionEstimator(max_iter=100).fit(data, labels)
        preds = np.argmax(np.vstack(model.apply_partition(list(x))), axis=1)
        assert (preds == y).mean() > 0.9

    def test_probabilities_sum_to_one(self, ctx):
        data, labels, x, _ = self._problem(ctx)
        model = LogisticRegressionEstimator(max_iter=20).fit(data, labels)
        p = model.apply(x[0])
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_regularization_shrinks(self, ctx):
        data, labels, *_ = self._problem(ctx)
        small = LogisticRegressionEstimator(max_iter=50, l2_reg=1e-8).fit(
            data, labels)
        big = LogisticRegressionEstimator(max_iter=50, l2_reg=10.0).fit(
            data, labels)
        assert np.linalg.norm(big.weights) < np.linalg.norm(small.weights)

    def test_invalid_iters(self):
        with pytest.raises(ValueError, match="max_iter"):
            LogisticRegressionEstimator(max_iter=0)


class TestFilterLearning:
    def _images(self, n=30, size=16, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.random((size, size, 3)) for _ in range(n)]

    def test_returns_convolver_with_bias(self, ctx):
        data = ctx.parallelize(self._images(), 2)
        learner = ConvolutionalFilterLearner(
            num_filters=4, patch_size=4, image_shape=(16, 16, 3),
            patches_per_image=20, seed=0)
        conv = learner.fit(data)
        assert isinstance(conv, Convolver)
        assert conv.filters.shape == (4, 4, 4, 3)
        assert conv.bias.shape == (4,)

    def test_convolver_applies(self, ctx):
        data = ctx.parallelize(self._images(), 2)
        conv = ConvolutionalFilterLearner(
            num_filters=4, patch_size=4, image_shape=(16, 16, 3),
            patches_per_image=20, seed=0).fit(data)
        out = conv.apply(self._images(1, seed=9)[0])
        assert out.shape == (13, 13, 4)

    def test_whitening_folding_equivalence(self, ctx):
        """Convolving with folded filters equals whiten-then-dot on a patch."""
        data = ctx.parallelize(self._images(seed=1), 2)
        learner = ConvolutionalFilterLearner(
            num_filters=3, patch_size=4, image_shape=(16, 16, 3),
            patches_per_image=30, seed=0)
        conv = learner.fit(data)
        img = self._images(1, seed=7)[0]
        patch = img[0:4, 0:4, :].ravel()
        response = conv.apply(img)[0, 0, :]
        # Recompute the folded response directly: filters already include W.
        manual = conv.filters.reshape(3, -1) @ img[0:4, 0:4, :].reshape(
            4, 4, 3).ravel() + conv.bias
        # filters stored (b, s, s, c): flatten order must match patch order.
        np.testing.assert_allclose(response, manual, atol=1e-8)

    def test_too_few_patches(self, ctx):
        data = ctx.parallelize(self._images(2), 1)
        learner = ConvolutionalFilterLearner(
            num_filters=50, patch_size=4, image_shape=(16, 16, 3),
            patches_per_image=5, max_images=2)
        with pytest.raises(ValueError, match="patches"):
            learner.fit(data)

    def test_invalid_filters(self):
        with pytest.raises(ValueError, match="num_filters"):
            ConvolutionalFilterLearner(0, 4, (16, 16, 3))
