"""Incremental training: FitStore, warm retrain, deduped sweeps, streaming.

Covers the three consumers of :mod:`repro.incremental` plus the store's
degradation contract.  The acceptance bar throughout is byte-identity:
every warm, deduped, or streaming fit must produce predictions
``np.array_equal`` to an independent cold ``LocalBackend`` fit.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import io as rio
from repro.core.backends import BACKENDS
from repro.core.backends.local import LocalBackend
from repro.core.pipeline import Pipeline
from repro.core.tuning import GridSearch
from repro.dataset.context import Context
from repro.incremental import FitStore, SweepPlanner, diff_pipelines, refit
from repro.nodes.numeric import StandardScaler
from repro.pipelines.amazon import amazon_pipeline
from repro.workloads import amazon_reviews

WORKLOAD = amazon_reviews(200, 30, vocab_size=300, seed=0)
L2_GRID = (1e-8, 1e-6, 1e-4, 1e-2, 1e-1, 1.0)


def build_text(ctx, l2_reg=1e-8, num_features=100):
    """The Amazon pipeline with the hyperparameter knob that survives
    optimization (every physical solver carries l2_reg)."""
    return amazon_pipeline(ctx, WORKLOAD, num_features=num_features, l2_reg=l2_reg)


def predictions(fitted, ctx):
    return np.asarray(fitted.apply_dataset(WORKLOAD.test_data(ctx)).collect())


def accuracy(fitted, ctx):
    preds = predictions(fitted, ctx)
    yhat = preds.argmax(axis=1)
    return float((yhat == np.asarray(WORKLOAD.test_labels)).mean())


class TestFitStore:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            FitStore(budget_bytes=0)

    def test_get_returns_fresh_copy(self):
        store = FitStore()
        store.put("k", [1, 2, 3])
        first = store.get("k")
        first.append(99)
        assert store.get("k") == [1, 2, 3]

    def test_miss_returns_none(self):
        store = FitStore()
        assert store.get("absent") is None
        assert "absent" not in store

    def test_over_budget_insert_evicts_lru(self):
        blob = b"x" * 64
        size = len(pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL))
        store = FitStore(budget_bytes=2 * size)
        assert store.put("a", blob)
        assert store.put("b", blob)
        assert store.get("a") == blob  # touch: "b" is now least recent
        assert store.put("c", blob)
        assert store.evictions == 1
        assert "b" not in store
        assert "a" in store and "c" in store

    def test_entry_larger_than_budget_rejected(self):
        store = FitStore(budget_bytes=16)
        assert not store.put("huge", b"y" * 1024)
        assert len(store) == 0

    def test_unpicklable_value_refused(self):
        store = FitStore()
        assert not store.put("f", lambda x: x)
        assert "f" not in store

    def test_corrupt_entry_reads_as_miss_and_drops(self):
        store = FitStore()
        store.manager.put("bad", [b"\x80not a pickle"], 13)
        assert store.get("bad") is None
        assert "bad" not in store

    def test_namespaces_are_disjoint(self):
        store = FitStore()
        store.put_fit("k", "model")
        store.put_stats("k", "stat")
        assert store.get_fit("k") == "model"
        assert store.get_stats("k") == "stat"
        assert len(store) == 2


class TestFitStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = FitStore(budget_bytes=1 << 20)
        store.put("a", np.arange(4))
        store.put("b", {"w": [1.5]})
        path = tmp_path / "store.bin"
        store.save(path)
        loaded = FitStore.load(path)
        assert sorted(loaded.keys()) == ["a", "b"]
        assert np.array_equal(loaded.get("a"), np.arange(4))
        assert loaded.get("b") == {"w": [1.5]}
        assert loaded.budget_bytes == 1 << 20

    def test_missing_file_loads_empty(self, tmp_path):
        store = FitStore.load(tmp_path / "nope.bin")
        assert len(store) == 0

    def test_garbage_file_loads_empty(self, tmp_path):
        path = tmp_path / "store.bin"
        path.write_bytes(b"this is not a pickle at all")
        assert len(FitStore.load(path)) == 0

    def test_truncated_file_loads_empty(self, tmp_path):
        store = FitStore()
        store.put("a", list(range(100)))
        path = tmp_path / "store.bin"
        store.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert len(FitStore.load(path)) == 0

    def test_wrong_format_version_loads_empty(self, tmp_path):
        path = tmp_path / "store.bin"
        doc = {"format": 999, "budget_bytes": 10.0, "entries": []}
        path.write_bytes(pickle.dumps(doc))
        store = FitStore.load(path)
        assert len(store) == 0
        assert store.budget_bytes == float("inf")

    def test_budget_override(self, tmp_path):
        store = FitStore(budget_bytes=1024)
        path = tmp_path / "store.bin"
        store.save(path)
        assert FitStore.load(path, budget_bytes=2048).budget_bytes == 2048


class TestWarmRetrain:
    def test_cold_fit_populates_store(self):
        ctx = Context()
        store = FitStore()
        fitted = build_text(ctx).fit(fit_store=store)
        report = fitted.training_report
        assert report.reused_ops == []
        assert sorted(report.refit_ops) == [
            "CommonSparseFeatures",
            "LinearSolver",
        ]
        assert report.reused_op_fraction == 0.0
        assert len(store) > 0

    def test_identical_refit_reuses_everything(self):
        ctx = Context()
        store = FitStore()
        build_text(ctx).fit(fit_store=store)
        warm = refit(build_text(ctx), store)
        report = warm.training_report
        assert report.refit_ops == []
        assert report.reused_op_fraction == 1.0
        cold = build_text(ctx).fit()
        assert np.array_equal(predictions(warm, ctx), predictions(cold, ctx))

    def test_hyperparam_change_refits_only_downstream(self):
        ctx = Context()
        store = FitStore()
        build_text(ctx, l2_reg=1e-8).fit(fit_store=store)
        warm = build_text(ctx, l2_reg=1e-2).refit(store)
        report = warm.training_report
        assert report.reused_ops == ["CommonSparseFeatures"]
        assert report.refit_ops == ["LinearSolver"]
        assert report.reused_op_fraction == 0.5
        cold = build_text(ctx, l2_reg=1e-2).fit()
        assert np.array_equal(predictions(warm, ctx), predictions(cold, ctx))

    def test_data_change_invalidates(self):
        ctx = Context()
        store = FitStore()
        build_text(ctx).fit(fit_store=store)
        other = amazon_reviews(200, 30, vocab_size=300, seed=1)
        changed = amazon_pipeline(ctx, other, num_features=100)
        report = changed.fit(fit_store=store).training_report
        assert report.reused_ops == []

    def test_diff_pipelines_previews_reuse(self):
        ctx = Context()
        diff = diff_pipelines(
            build_text(ctx, l2_reg=1e-8), build_text(ctx, l2_reg=1e-2)
        )
        assert diff.reusable == ["CommonSparseFeatures"]
        assert diff.stale == ["LinearSolver"]

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_reuse_on_every_backend(self, backend):
        ctx = Context()
        store = FitStore()
        build_text(ctx).fit(fit_store=store, backend=backend)
        warm = build_text(ctx).fit(fit_store=store, backend=backend)
        assert warm.training_report.reused_op_fraction == 1.0
        cold = build_text(ctx).fit()
        assert np.array_equal(predictions(warm, ctx), predictions(cold, ctx))


class TestSweep:
    def test_union_dedup_counts(self):
        ctx = Context()
        configs = [{"l2": l2} for l2 in L2_GRID]
        planner = SweepPlanner(lambda p: build_text(ctx, l2_reg=p["l2"]), configs)
        trials, report = planner.run()
        assert len(trials) == len(configs)
        assert report.unique_ops < report.total_ops
        assert report.shared_ops == report.total_ops - report.unique_ops
        assert report.dedup_ratio > 1.0

    def test_trials_byte_identical_to_independent_fits(self):
        ctx = Context()
        configs = [{"l2": l2} for l2 in L2_GRID]
        planner = SweepPlanner(lambda p: build_text(ctx, l2_reg=p["l2"]), configs)
        trials, _ = planner.run()
        for params, trial in zip(configs, trials):
            cold = build_text(ctx, l2_reg=params["l2"]).fit()
            assert np.array_equal(predictions(trial, ctx), predictions(cold, ctx))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            SweepPlanner(lambda p: None, []).union_pipeline()

    def test_grid_search_incremental_matches_plain(self):
        ctx = Context()
        grid = {"l2": list(L2_GRID)}

        def builder(params):
            return build_text(ctx, l2_reg=params["l2"])

        def scorer(fitted):
            return accuracy(fitted, ctx)

        plain = GridSearch(builder, scorer, grid).run()
        inc = GridSearch(builder, scorer, grid, incremental=True).run()
        assert [t.score for t in inc.trials] == [t.score for t in plain.trials]
        assert inc.best.params == plain.best.params
        assert inc.sweep_report is not None
        assert inc.sweep_report.unique_ops < inc.sweep_report.total_ops
        assert plain.sweep_report is None

    def test_grid_search_threads_backend_and_store(self):
        ctx = Context()

        class SpyBackend(LocalBackend):
            def __init__(self):
                self.executions = 0

            def execute(self, plan, ctx=None):
                self.executions += 1
                return super().execute(plan, ctx=ctx)

        spy = SpyBackend()
        store = FitStore()
        grid = {"l2": [1e-8, 1e-2]}
        search = GridSearch(
            lambda p: build_text(ctx, l2_reg=p["l2"]),
            lambda fitted: accuracy(fitted, ctx),
            grid,
            backend=spy,
            fit_store=store,
        )
        result = search.run()
        assert spy.executions == 2
        assert len(store) > 0
        rerun = GridSearch(
            lambda p: build_text(ctx, l2_reg=p["l2"]),
            lambda fitted: accuracy(fitted, ctx),
            grid,
            fit_store=store,
        ).run()
        assert [t.score for t in rerun.trials] == [t.score for t in result.trials]


VECTORS = [np.array([float(i), float(2 * i), 1.0]) for i in range(80)]


def scaler_pipeline(ctx, n_items, partitions):
    data = ctx.parallelize(VECTORS[:n_items], partitions)
    return Pipeline.identity().and_then(StandardScaler(), data)


class TestStreamingRefit:
    def test_appended_partitions_merge_stats(self):
        ctx = Context()
        store = FitStore()
        cold = scaler_pipeline(ctx, 60, 3).fit(fit_store=store)
        assert cold.training_report.stat_partitions_computed == 3
        assert cold.training_report.stat_partitions_reused == 0
        grown = scaler_pipeline(ctx, 80, 4).fit(fit_store=store)
        report = grown.training_report
        assert report.reused_ops == []  # data changed: no whole-fit splice
        assert report.stat_partitions_reused == 3
        assert report.stat_partitions_computed == 1

    def test_streaming_refit_byte_identical(self):
        ctx = Context()
        store = FitStore()
        scaler_pipeline(ctx, 60, 3).fit(fit_store=store)
        warm = scaler_pipeline(ctx, 80, 4).fit(fit_store=store)
        cold = scaler_pipeline(ctx, 80, 4).fit()
        probe = ctx.parallelize(VECTORS, 2)
        out_w = np.asarray(warm.apply_dataset(probe).collect())
        out_c = np.asarray(cold.apply_dataset(probe).collect())
        assert np.array_equal(out_w, out_c)

    def test_unshardable_flow_degrades_to_cold(self):
        ctx = Context()
        store = FitStore()
        fitted = build_text(ctx).fit(fit_store=store)
        # LinearSolver resolves to LocalQRSolver at this scale (not
        # shardable): it must fit cold without stats, not crash.
        assert "LinearSolver" in fitted.training_report.refit_ops


class TestPersistedPipelineStore:
    def test_save_pipeline_writes_store_sidecar(self, tmp_path):
        ctx = Context()
        store = FitStore()
        fitted = build_text(ctx).fit(fit_store=store)
        path = tmp_path / "pipe.pkl"
        rio.save_pipeline(fitted, path, fit_store=store)
        assert rio.fit_store_path(path).exists()
        loaded = rio.load_fit_store(path)
        assert sorted(loaded.keys()) == sorted(store.keys())
        warm = build_text(ctx).fit(fit_store=loaded)
        assert warm.training_report.reused_op_fraction == 1.0

    def test_load_fit_store_missing_is_empty(self, tmp_path):
        assert len(rio.load_fit_store(tmp_path / "absent.pkl")) == 0

    def test_save_pipeline_without_store_unchanged(self, tmp_path):
        ctx = Context()
        fitted = build_text(ctx).fit()
        path = tmp_path / "pipe.pkl"
        rio.save_pipeline(fitted, path)
        assert not rio.fit_store_path(path).exists()
        reloaded = rio.load_pipeline(path)
        assert np.array_equal(predictions(reloaded, ctx), predictions(fitted, ctx))
