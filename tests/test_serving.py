"""Tests for the online serving subsystem (repro.serving).

The headline contract, in the style of ``tests/test_backends.py``: every
workload in ``workloads/registry.py`` served through :class:`ModelServer`
— batched and unbatched, cache on and off — returns predictions
byte-identical to ``FittedPipeline.apply``.  Served pipelines no longer
need to end in a classification head: ``VectorizePass`` (the serving
default) lowers kernel-capable op runs into batch-invariant columnar
``KernelStage`` slots, so the *batched* path is byte-identical on raw
score vectors too (``TestVectorizedServing`` — single-process and
replica-tier, cache on and off; historically only the unbatched path
held this).

Component coverage: the InferencePlan compiler (flat lowering, fusion/CSE
preservation, compiled-plan caching on FittedPipeline), the micro-batcher
(flush on max_batch / max_delay, bounded-queue backpressure, error
propagation), the cost-model serving cache (greedy selection under
``sink_requests``, fingerprints, LRU eviction), the server registry (warm
swap, versions, stats) and ``ShardingPass(workers="auto")``.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import graph as g
from repro.core.backends import LocalBackend, recursive_apply_item
from repro.core.materialization import (
    MaterializationProblem,
    greedy_cache_set,
)
from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.passes import FusionPass, ShardingPass
from repro.core.pipeline import Pipeline
from repro.core.plan import PassDecision
from repro.core.profiler import NodeProfile, PipelineProfile
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.logistic import LogisticRegressionEstimator
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import (
    Flatten,
    MaxClassifier,
    Normalizer,
    StandardScaler,
)
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
)
from repro.serving import (
    HIGH,
    LOW,
    NORMAL,
    AsyncModelServer,
    InferencePlan,
    MicroBatcher,
    ModelServer,
    ReplicaSet,
    RequestShedError,
    ServerOverloadedError,
    ServingCache,
    SLOController,
    compile_inference_plan,
    fingerprint,
)
from repro.workloads import amazon_reviews, timit_frames, youtube8m

# Servable scenarios (one classifier-headed pipeline per registry
# workload) are shared with the backend-equivalence and pickling suites.
from workload_scenarios import SCENARIOS, _vector_pipeline, comparable

_FITTED = {}


def fitted_scenario(name):
    """Train each scenario once per session (fit is the slow part)."""
    if name not in _FITTED:
        pipe, items = SCENARIOS[name](Context())
        fitted = pipe.fit(level="none")
        _FITTED[name] = (fitted, items,
                         comparable([fitted.apply(x) for x in items]))
    return _FITTED[name]


_RAW_FITTED = {}


def raw_scenario(name):
    """Headless (raw-score-vector) pipelines, one per vectorizable
    workload family — the pipelines the pre-kernel serving stack could
    only serve byte-identically unbatched."""
    if name not in _RAW_FITTED:
        ctx = Context()
        if name == "amazon":
            wl = amazon_reviews(120, 16, vocab_size=200, seed=0)
            pipe = (Pipeline.identity()
                    .and_then(LowerCase())
                    .and_then(Tokenizer())
                    .and_then(TermFrequency(lambda c: 1.0))
                    .and_then(CommonSparseFeatures(120), wl.train_data(ctx))
                    .and_then(LinearSolver(), wl.train_data(ctx),
                              wl.train_label_vectors(ctx)))
        elif name == "logistic":
            wl = timit_frames(80, 12, dim=16, num_classes=3, seed=2)
            pipe = (Pipeline.identity()
                    .and_then(StandardScaler(), wl.train_data(ctx))
                    .and_then(LogisticRegressionEstimator(max_iter=8),
                              wl.train_data(ctx),
                              wl.train_label_vectors(ctx)))
        else:
            wl = (timit_frames(80, 12, dim=16, num_classes=3, seed=1)
                  if name == "timit"
                  else youtube8m(80, 12, dim=24, num_classes=4, seed=0))
            pipe = (Pipeline.identity()
                    .and_then(StandardScaler(), wl.train_data(ctx))
                    .and_then(CosineRandomFeatures(16, seed=1),
                              wl.train_data(ctx))
                    .and_then(LinearSolver(), wl.train_data(ctx),
                              wl.train_label_vectors(ctx)))
        fitted = pipe.fit(level="none")
        items = wl.test_items
        _RAW_FITTED[name] = (fitted, items,
                             comparable([fitted.apply(x) for x in items]))
    return _RAW_FITTED[name]


class TestServingEquivalence:
    """ModelServer == FittedPipeline.apply, byte for byte."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("batched", [True, False],
                             ids=["batched", "unbatched"])
    @pytest.mark.parametrize("cache_budget", [0.0, 1e7],
                             ids=["cache-off", "cache-on"])
    def test_served_predictions_byte_identical(self, name, batched,
                                               cache_budget):
        fitted, items, expected = fitted_scenario(name)
        server = ModelServer(max_batch=8, max_delay_ms=5.0,
                             micro_batching=batched,
                             cache_budget_bytes=cache_budget)
        with server:
            server.register(name, fitted, warmup_items=items[:3])
            got = comparable(server.predict_many(name, items))
            assert got == expected
            # Repeats (cache hits, when enabled) must not change bytes.
            again = comparable(server.predict_many(name, items))
            assert again == expected
            if cache_budget:
                assert server.stats(name).models[f"{name}@v1"].cache_hits > 0

    @pytest.mark.parametrize("batched", [True, False],
                             ids=["batched", "unbatched"])
    def test_serving_matches_raw_scores(self, batched):
        """No classification head required: the kernel-lowered batched
        path matches apply bit-for-bit on raw score vectors, exactly
        like the inline per-item path always has."""
        raw, wl_items, expected = raw_scenario("timit")
        server = ModelServer(micro_batching=batched,
                             cache_budget_bytes=1e7)
        with server:
            server.register("raw", raw, warmup_items=wl_items[:2])
            got = comparable(server.predict_many("raw", wl_items))
            again = comparable(server.predict_many("raw", wl_items))
        assert got == expected
        assert again == expected


class TestInferencePlanCompiler:
    def test_flat_lowering_is_topological(self):
        fitted, items, _ = fitted_scenario("timit")
        plan = compile_inference_plan(fitted)
        assert len(plan) == len(g.ancestors([fitted.sink]))
        for op in plan.ops:
            assert all(p < op.slot for p in op.parents)
        assert plan.sink_slot == len(plan) - 1

    def test_run_item_matches_recursive_walk(self):
        for name in ("amazon", "timit", "imagenet"):
            fitted, items, _ = fitted_scenario(name)
            plan = compile_inference_plan(fitted)
            for item in items[:4]:
                assert comparable([plan.run_item(item)]) == comparable(
                    [recursive_apply_item(fitted, item)])

    def test_gather_pipeline_compiles_and_matches(self):
        wl = amazon_reviews(100, 10, vocab_size=150, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        base = (Pipeline.identity().and_then(LowerCase())
                .and_then(Tokenizer())
                .and_then(TermFrequency(lambda c: 1.0))
                .and_then(CommonSparseFeatures(80), data))
        fitted = Pipeline.gather(
            [base.and_then(LinearSolver(), data, labels),
             base.and_then(LinearSolver(l2_reg=1.0), data, labels)],
        ).fit(level="pipe", sample_sizes=(10, 20))
        plan = fitted.inference_plan()
        # CSE merged the shared featurization: one slot feeds both
        # solver branches, and run_item computes it once per request.
        gather_op = plan.ops[plan.sink_slot]
        assert gather_op.kind == "gather"
        assert len(gather_op.parents) == 2
        for item in wl.test_items[:4]:
            assert comparable(plan.run_item(item)) == comparable(
                recursive_apply_item(fitted, item))
        batch = plan.run_batch(wl.test_items)
        assert comparable(batch) == comparable(
            fitted.apply_dataset(
                Context().parallelize(wl.test_items, 1)).collect())

    def test_fused_stages_stay_fused(self):
        wl = timit_frames(60, 8, dim=12, num_classes=3, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(Normalizer())
                .and_then(Flatten())
                .and_then(LinearSolver(), data, labels))
        passes = passes_for_level("none")
        passes.insert(0, FusionPass())
        fitted = Optimizer(passes).optimize(pipe).execute()
        from repro.core.fusion import FusedTransformer

        plan = compile_inference_plan(fitted)
        fused = [op for op in plan.ops
                 if isinstance(op.op, FusedTransformer)]
        assert fused, "FusionPass stages must arrive as one compiled op"

    def test_fitted_pipeline_caches_compiled_plan(self):
        fitted, items, _ = fitted_scenario("timit")
        plan1 = fitted.inference_plan()
        fitted.apply(items[0])
        assert fitted.inference_plan() is plan1

    def test_pre_compiled_plan_pickles_load(self):
        """A pickle whose state predates the compiled-plan cache (no
        _compiled_plan key) must apply cleanly, not AttributeError."""
        from repro.core.pipeline import FittedPipeline

        fitted, items, expected = fitted_scenario("voc")
        state = fitted.__getstate__()
        del state["_compiled_plan"]  # simulate a v1.1.0 pickle payload
        revived = FittedPipeline.__new__(FittedPipeline)
        revived.__setstate__(state)
        assert comparable([revived.apply(items[0])]) == [expected[0]]

    def test_apply_with_backend_matches_default(self):
        fitted, items, expected = fitted_scenario("voc")
        got = comparable([fitted.apply(x, backend=LocalBackend())
                          for x in items])
        assert got == expected

    def test_rejects_unbound_source(self):
        ctx = Context()
        bound = g.source(ctx.parallelize([1, 2], 1))
        sink = g.OpNode(g.TRANSFORMER, Normalizer(), (bound,))
        from repro.core.pipeline import FittedPipeline

        broken = FittedPipeline(g.pipeline_input(), sink)
        with pytest.raises(ValueError, match="unbound source"):
            compile_inference_plan(broken)


class TestMicroBatcher:
    def test_flushes_on_max_batch(self):
        sizes = []

        def runner(items):
            sizes.append(len(items))
            return items

        batcher = MicroBatcher(runner, max_batch=4, max_delay_ms=500)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.start()
        assert [f.result(timeout=10) for f in futures] == list(range(10))
        batcher.stop()
        # Pre-queued requests flush as full batches; only the remainder
        # waits out the delay.
        assert sizes[0] == 4
        assert sum(sizes) == 10
        assert max(sizes) <= 4

    def test_flushes_on_max_delay(self):
        batcher = MicroBatcher(lambda items: items, max_batch=64,
                               max_delay_ms=20).start()
        start = time.perf_counter()
        assert batcher.submit("x").result(timeout=10) == "x"
        elapsed = time.perf_counter() - start
        batcher.stop()
        assert elapsed < 5.0  # flushed by the delay, not max_batch

    def test_bounded_queue_sheds_load(self):
        batcher = MicroBatcher(lambda items: items, max_queue=2)
        batcher.submit(1)
        batcher.submit(2)
        with pytest.raises(ServerOverloadedError, match="queue full"):
            batcher.submit(3)

    def test_runner_error_propagates_to_futures(self):
        def boom(items):
            raise RuntimeError("boom")

        batcher = MicroBatcher(boom, max_batch=2, max_delay_ms=1).start()
        fut = batcher.submit("x")
        with pytest.raises(RuntimeError, match="boom"):
            fut.result(timeout=10)
        batcher.stop()

    def test_wrong_result_length_is_an_error(self):
        batcher = MicroBatcher(lambda items: items[:-1], max_batch=2,
                               max_delay_ms=1).start()
        fut = batcher.submit("x")
        with pytest.raises(RuntimeError, match="results for"):
            fut.result(timeout=10)
        batcher.stop()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda i: i, max_batch=0)
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(lambda i: i, max_queue=0)

    def test_submit_after_stop_is_rejected(self):
        batcher = MicroBatcher(lambda items: items).start()
        batcher.stop()
        with pytest.raises(ServerOverloadedError, match="stopped"):
            batcher.submit("x")

    def test_stop_drains_requests_enqueued_during_shutdown(self):
        """The post-join sweep resolves late arrivals instead of parking
        their futures until the caller's timeout."""
        batcher = MicroBatcher(lambda items: items, max_delay_ms=1)
        fut = batcher.submit("x")  # worker never started: queue only
        batcher.stop()  # drain=True must still flush it
        assert fut.result(timeout=1) == "x"


class TestServingCacheSelection:
    def _problem(self, times, sizes, sink_requests):
        """A 3-node chain a -> b -> c with the given costs/sizes."""
        a = g.OpNode(g.TRANSFORMER, Normalizer(), (g.pipeline_input(),),
                     label="a")
        b = g.OpNode(g.TRANSFORMER, Normalizer(), (a,), label="b")
        c = g.OpNode(g.TRANSFORMER, Normalizer(), (b,), label="c")
        profile = PipelineProfile()
        for node, t, size in zip((a, b, c), times, sizes):
            profile.nodes[node.id] = NodeProfile(
                node=node, t_seconds=t, size_bytes=size, stats=None)
        profile.nodes[a.parents[0].id] = NodeProfile(
            node=a.parents[0], t_seconds=0.0, size_bytes=0.0, stats=None)
        return c, MaterializationProblem([c], profile,
                                         sink_requests=sink_requests)

    def test_sink_requests_make_linear_chains_cacheable(self):
        # With one request per input, caching a linear chain buys
        # nothing; with repeats, the sink is the best buy.
        _, once = self._problem([1.0, 1.0, 1.0], [10, 10, 10], 1.0)
        assert greedy_cache_set(once, mem_budget=100) == set()
        sink, repeated = self._problem([1.0, 1.0, 1.0], [10, 10, 10], 5.0)
        assert sink.id in greedy_cache_set(repeated, mem_budget=100)

    def test_budget_excludes_fat_nodes(self):
        sink, problem = self._problem([1.0, 1.0, 1.0], [10, 10, 1000], 5.0)
        chosen = greedy_cache_set(problem, mem_budget=50)
        assert sink.id not in chosen  # sink too big for the budget
        assert chosen  # but a cheaper upstream node still pays off

    def test_sink_requests_validation(self):
        with pytest.raises(ValueError, match="sink_requests"):
            self._problem([1.0], [1.0], 0.5)

    def test_server_selects_expensive_sink(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(cache_budget_bytes=1e7, expected_reuse=8.0)
        model = server.register("m", fitted, warmup_items=items[:4])
        # Selection is content-addressed: the sink's op key is in the set.
        assert model.plan.key_of(fitted.sink.id) in model.cache.keys
        assert model.plan.sink_slot in model.plan.cached_slots


class TestServingCacheRuntime:
    def test_lru_eviction_under_budget(self):
        value = np.zeros(64)  # estimate_size >> 1 byte
        from repro.dataset.sizing import estimate_size

        size = estimate_size(value)
        cache = ServingCache(budget_bytes=2.5 * size, keys={"op1"})
        cache.put("op1", b"a", value)
        cache.put("op1", b"b", value)
        cache.put("op1", b"c", value)  # evicts the oldest (a)
        assert len(cache) == 2
        assert cache.lookup("op1", b"a") == (False, None)
        assert cache.lookup("op1", b"c")[0]
        assert cache.manager.evictions == 1

    def test_boxed_values_roundtrip_falsy_outputs(self):
        cache = ServingCache(budget_bytes=1e6, keys={"op1"})
        cache.put("op1", b"k", 0)
        assert cache.lookup("op1", b"k") == (True, 0)

    def test_fingerprints_discriminate(self):
        a = np.arange(4, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        assert fingerprint(a) != fingerprint(a.reshape(2, 2))
        assert fingerprint("doc") == fingerprint("doc")
        assert fingerprint("doc") != fingerprint("Doc")
        assert fingerprint([1, 2]) != fingerprint((1, 2))
        assert fingerprint(1) != fingerprint("1")
        import scipy.sparse as sp

        row = sp.csr_matrix(np.eye(3)[0])
        assert fingerprint(row) == fingerprint(row.copy())
        assert fingerprint(row) != fingerprint(sp.csr_matrix(np.eye(3)[1]))

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            ServingCache(budget_bytes=0, keys={"op1"})

    def test_opaque_types_are_rejected_not_aliased(self):
        # repr() of a default object embeds its memory address; hashing
        # it would alias two different requests after address reuse.
        class Opaque:
            pass

        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(Opaque())
        assert isinstance(fingerprint(np.int64(7)), bytes)

    def test_batched_reuse_of_intermediate_only_cache(self):
        """When the sink is over budget, a cached featurizer must still
        answer repeats on the batched path (not be write-only)."""
        fitted, items, expected = fitted_scenario("timit")
        plan = compile_inference_plan(fitted)
        # Cache only the RandomFeatures output: the expensive prefix.
        feature_key = [op.key for op in plan.ops
                       if "RandomFeatures" in op.label][0]
        cache = ServingCache(budget_bytes=1e7, keys={feature_key})
        plan.attach_cache(cache)
        fps = [fingerprint(x) for x in items]
        first = plan.run_batch(items, fps)
        assert cache.hits == 0 and len(cache) == len(items)
        second = plan.run_batch(items, fps)
        assert cache.hits == len(items)
        assert comparable(first) == comparable(second) == expected


class TestModelServer:
    def test_warm_swap_between_versions(self):
        wl = timit_frames(80, 10, dim=16, num_classes=3, seed=2)
        ctx = Context()
        v1 = _vector_pipeline(ctx, wl, 16).fit(level="none")
        v2 = (Pipeline.identity()
              .and_then(Normalizer())
              .and_then(LinearSolver(), wl.train_data(ctx),
                        wl.train_label_vectors(ctx))
              .and_then(MaxClassifier())
              .fit(level="none"))
        item = wl.test_items[0]
        server = ModelServer(micro_batching=False)
        with server:
            server.register("m", v1, version="v1")
            server.register("m", v2, version="v2")  # warm, not default
            assert server.default_version("m") == "v1"
            assert server.versions("m") == ["v1", "v2"]
            assert server.predict("m", item) == v1.apply(item)
            server.deploy("m", "v2")
            assert server.default_version("m") == "v2"
            assert server.predict("m", item) == v2.apply(item)
            # Pinned requests still reach the undeployed version.
            assert server.predict("m", item, version="v1") == v1.apply(item)

    def test_reregistering_a_version_stops_displaced_batcher(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(max_batch=4, max_delay_ms=1.0)
        with server:
            old = server.register("m", fitted)
            assert old.batcher.running
            new = server.register("m", fitted, version="v1")
            assert not old.batcher.running
            assert new.batcher.running
            assert server.predict("m", items[0]) == fitted.apply(items[0])

    def test_stopped_server_rejects_instead_of_resurrecting(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(max_batch=4, max_delay_ms=1.0,
                             cache_budget_bytes=1e7)
        with server:
            model = server.register("m", fitted, warmup_items=items[:3])
            server.predict("m", items[0])
        assert not model.batcher.running
        # Rejects cold requests AND cached repeats alike.
        with pytest.raises(ServerOverloadedError, match="stopped"):
            server.predict("m", items[1])
        with pytest.raises(ServerOverloadedError, match="stopped"):
            server.predict("m", items[0])
        assert not model.batcher.running  # no worker was resurrected
        server.start()
        assert server.predict("m", items[0]) == fitted.apply(items[0])

    def test_cache_hit_rate_counts_each_request_once(self):
        """The pre-queue sink probe and the batch path's backward pass
        must not double-count one request's miss."""
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(max_batch=4, max_delay_ms=2.0,
                             cache_budget_bytes=1e7)
        with server:
            server.register("m", fitted, warmup_items=items[:3])
            cold = items[:2]
            server.predict_many("m", cold)   # 2 misses
            server.predict_many("m", cold)   # 2 hits
            stats = server.stats("m").models["m@v1"]
        assert (stats.cache_hits, stats.cache_misses) == (2, 2)
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_stats_report_cached_nodes_before_any_traffic(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(cache_budget_bytes=1e7)
        server.register("m", fitted, warmup_items=items[:3])
        stats = server.stats("m").models["m@v1"]
        assert stats.cached_nodes > 0  # selection visible pre-traffic

    def test_undeployed_only_model_raises_actionable_error(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(micro_batching=False)
        server.register("m", fitted, version="v1", deploy=False)
        with pytest.raises(KeyError, match="no deployed version"):
            server.predict("m", items[0])
        server.deploy("m", "v1")
        assert server.predict("m", items[0]) == fitted.apply(items[0])

    def test_unknown_model_and_version(self):
        server = ModelServer()
        with pytest.raises(KeyError, match="no model registered"):
            server.predict("ghost", 1)
        fitted, items, _ = fitted_scenario("timit")
        server.register("m", fitted)
        with pytest.raises(KeyError, match="no version"):
            server.predict("m", items[0], version="v9")

    def test_stats_report_shape(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(max_batch=4, max_delay_ms=2.0,
                             cache_budget_bytes=1e7)
        with server:
            server.register("timit", fitted, warmup_items=items[:3])
            server.predict_many("timit", items)
            server.predict_many("timit", items)
            stats = server.stats()
        model = stats.models["timit@v1"]
        assert model.requests == 2 * len(items)
        assert stats.total_requests == model.requests
        assert model.errors == 0
        assert model.throughput_rps > 0
        assert 0 < model.p50_ms <= model.p95_ms <= model.p99_ms
        assert model.batches >= 1
        assert 1 <= model.mean_batch_size <= 4
        assert model.cache_hit_rate > 0
        # register() compiles through VectorizePass by default, so the
        # served plan can be shorter than the raw inference plan.
        assert model.plan_ops == len(
            compile_inference_plan(fitted, vectorize=True))
        assert model.plan_ops <= len(fitted.inference_plan())
        text = stats.describe()
        assert "timit@v1" in text
        assert "p95" in text
        assert "hit rate" in text

    def test_request_errors_are_recorded_and_raised(self):
        from repro.core.operators import Transformer

        class Boom(Transformer):
            def apply(self, item):
                raise RuntimeError("inference boom")

        fitted = (Pipeline.identity().and_then(Boom())
                  .fit(level="none"))
        for batched in (True, False):
            server = ModelServer(max_batch=2, max_delay_ms=1.0,
                                 micro_batching=batched)
            with server:
                server.register("m", fitted)
                with pytest.raises(RuntimeError, match="inference boom"):
                    server.predict("m", 1)
                assert server.stats("m").models["m@v1"].errors == 1

    def test_concurrent_clients_closed_loop(self):
        fitted, items, expected = fitted_scenario("youtube8m")
        server = ModelServer(max_batch=8, max_delay_ms=2.0,
                             cache_budget_bytes=1e7)
        failures = []

        def client():
            for item, want in zip(items, expected):
                got = comparable([server.predict("youtube8m", item)])
                if got != [want]:
                    failures.append(got)

        with server:
            server.register("youtube8m", fitted, warmup_items=items[:3])
            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "clients hung"
        assert not failures
        assert server.stats().total_requests == 4 * len(items)


class TestCrossVersionCache:
    """Two versions sharing a featurization prefix share cache entries."""

    def _two_text_versions(self):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)

        def train(l2_reg):
            ctx = Context()
            data = wl.train_data(ctx)
            labels = wl.train_label_vectors(ctx)
            return (Pipeline.identity()
                    .and_then(LowerCase())
                    .and_then(Tokenizer())
                    .and_then(TermFrequency(lambda c: 1.0))
                    .and_then(CommonSparseFeatures(80), data)
                    .and_then(LinearSolver(l2_reg=l2_reg), data, labels)
                    .and_then(MaxClassifier())
                    .fit(level="none"))

        return train(1e-8), train(1.0), wl.test_items

    def test_prefix_ops_share_content_keys(self):
        v1, v2, _ = self._two_text_versions()
        p1 = compile_inference_plan(v1)
        p2 = compile_inference_plan(v2)
        keys1 = [op.key for op in p1.ops]
        keys2 = [op.key for op in p2.ops]
        # input + featurization prefix (LowerCase..CommonSparseFeatures)
        # fingerprint equal; the differently-regularized solver and the
        # classifier head downstream of it flip.
        assert keys1[:5] == keys2[:5]
        assert keys1[5] != keys2[5]
        assert keys1[6] != keys2[6]

    def test_versions_share_one_cache_and_prefix_entries(self):
        v1, v2, items = self._two_text_versions()
        server = ModelServer(max_batch=8, max_delay_ms=2.0,
                             cache_budget_bytes=1e7)
        with server:
            # No warmup: every non-input op is cache-marked, so the
            # shared featurization prefix is cacheable in both versions.
            m1 = server.register("m", v1, version="v1")
            m2 = server.register("m", v2, version="v2")
            assert m1.cache is m2.cache  # one cache per registry entry
            expected_v1 = comparable(
                server.predict_many("m", items, version="v1"))
            hits_before = m1.cache.hits
            got_v2 = comparable(
                server.predict_many("m", items, version="v2"))
        assert expected_v1 == comparable([v1.apply(x) for x in items])
        assert got_v2 == comparable([v2.apply(x) for x in items])
        # v2 never served these items, yet its featurization resumed
        # from entries v1 wrote: content-addressed cross-version reuse.
        assert m1.cache.hits > hits_before

    def test_distinct_entries_keep_private_caches(self):
        v1, v2, items = self._two_text_versions()
        server = ModelServer(micro_batching=False, cache_budget_bytes=1e7)
        with server:
            m1 = server.register("a", v1)
            m2 = server.register("b", v2)
            assert m1.cache is not m2.cache


class TestShardingAutoWorkers:
    def _plan(self, workers, max_workers=None, resources=None):
        from repro.cluster.resources import r3_4xlarge

        wl = amazon_reviews(150, 10, vocab_size=200, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity().and_then(LowerCase())
                .and_then(Tokenizer())
                .and_then(TermFrequency(lambda c: 1.0))
                .and_then(CommonSparseFeatures(100), data)
                .and_then(LinearSolver(), data, labels))
        passes = passes_for_level("pipe", sample_sizes=(10, 20))
        passes.append(ShardingPass(workers=workers,
                                   max_workers=max_workers))
        return Optimizer(passes).optimize(
            pipe, resources=resources or r3_4xlarge(16))

    def test_auto_respects_budget(self):
        plan = self._plan("auto", max_workers=4)
        assert 1 <= plan.state.shard_workers <= 4

    def test_auto_defaults_budget_to_resources(self):
        plan = self._plan("auto")
        assert 1 <= plan.state.shard_workers <= 16

    def test_auto_decision_reaches_explain(self):
        plan = self._plan("auto", max_workers=8)
        text = plan.explain()
        assert "auto=True" in text
        assert "budget=8" in text
        assert "simulated_seconds=" in text

    def test_auto_requires_profile(self):
        from repro.cluster.resources import r3_4xlarge

        wl = amazon_reviews(60, 5, vocab_size=100, seed=0)
        ctx = Context()
        pipe = (Pipeline.identity().and_then(Tokenizer())
                .and_then(TermFrequency(lambda c: 1.0))
                .and_then(CommonSparseFeatures(50), wl.train_data(ctx))
                .and_then(LinearSolver(), wl.train_data(ctx),
                          wl.train_label_vectors(ctx)))
        passes = passes_for_level("none")
        passes.append(ShardingPass(workers="auto"))
        with pytest.raises(ValueError, match="needs a profiled plan"):
            Optimizer(passes).optimize(pipe, resources=r3_4xlarge(8))

    def test_auto_finds_interior_optimum_when_coordination_dominates(self):
        # Inflate the solver's profiled output: its log2(w) aggregation
        # traffic then outweighs the 1/w compute win well below the
        # budget, so auto must stop early.
        plan = self._plan(1)  # profiled plan; sharding decision ignored
        state = plan.state
        for node in g.ancestors([state.sink]):
            if node.kind == g.ESTIMATOR:
                state.profile.nodes[node.id].size_bytes = 1e12
        sharding = ShardingPass(workers="auto", max_workers=128)
        state.decisions.append(PassDecision(name=sharding.name))
        sharding.run(state)
        assert state.shard_workers < 128

    def test_auto_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="workers must be"):
            ShardingPass(workers="turbo")
        with pytest.raises(ValueError, match="max_workers"):
            ShardingPass(workers="auto", max_workers=0)

    def test_sharded_backend_consumes_auto_decision(self):
        from repro.core.backends import ShardedBackend

        plan = self._plan("auto", max_workers=6)
        fitted = plan.execute(backend=ShardedBackend())
        assert (fitted.training_report.simulated_workers
                == plan.state.shard_workers)


class TestSLOController:
    def test_pressure_grows_batch_within_hard_bounds(self):
        ctrl = SLOController(target_p99_ms=5.0, max_batch=32,
                             max_delay_ms=4.0, adjust_every=8)
        for _ in range(200):  # sustained 50ms latencies: way over target
            ctrl.observe(0.050, queue_depth=100)
            batch, delay = ctrl.limits()
            assert 1 <= batch <= 32          # never exceeds max_batch
            assert 0.0 <= delay <= 4.0       # never negative
        assert ctrl.pressure_events > 0
        assert ctrl.batch_limit == 32  # converged to the ceiling, not past

    def test_light_load_shrinks_delay_and_never_goes_negative(self):
        ctrl = SLOController(target_p99_ms=50.0, max_batch=32,
                             max_delay_ms=4.0, min_delay_ms=0.0,
                             adjust_every=4)
        initial_delay = ctrl.delay_ms
        for _ in range(400):  # fast requests, empty queue
            ctrl.observe(0.0001, queue_depth=0)
            batch, delay = ctrl.limits()
            assert delay >= 0.0
            assert batch >= ctrl.min_batch
        assert ctrl.delay_ms < initial_delay
        assert ctrl.batch_limit == ctrl.min_batch

    def test_pressure_then_calm_round_trips(self):
        ctrl = SLOController(target_p99_ms=5.0, max_batch=16,
                             max_delay_ms=2.0, adjust_every=4, window=64)
        for _ in range(64):
            ctrl.observe(0.050, queue_depth=50)
        grown = ctrl.batch_limit
        assert grown > ctrl.min_batch
        for _ in range(200):  # the window must forget the slow past
            ctrl.observe(0.0001, queue_depth=0)
        assert ctrl.batch_limit < grown

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="target_p99_ms"):
            SLOController(0.0)
        with pytest.raises(ValueError, match="min_batch"):
            SLOController(5.0, min_batch=4, max_batch=2)
        with pytest.raises(ValueError, match="min_delay_ms"):
            SLOController(5.0, min_delay_ms=-1.0)
        with pytest.raises(ValueError, match="grow"):
            SLOController(5.0, grow=1.0)
        with pytest.raises(ValueError, match="shrink"):
            SLOController(5.0, shrink=1.5)
        with pytest.raises(ValueError, match="adjust_every"):
            SLOController(5.0, adjust_every=0)

    def test_batcher_clamps_a_rogue_controller(self):
        """The batcher's hard box holds even if controller state is
        corrupted: effective batch <= max_batch, effective delay >= 0."""
        ctrl = SLOController(5.0, max_batch=1000, max_delay_ms=100.0)
        batcher = MicroBatcher(lambda items: items, max_batch=8,
                               max_delay_ms=2.0, controller=ctrl)
        ctrl.batch_limit = 1000
        ctrl.delay_ms = -7.0
        batch, delay = batcher._limits()
        assert batch == 8
        assert delay == 0.0

    def test_server_wires_controller_observations(self):
        fitted, items, expected = fitted_scenario("timit")
        server = ModelServer(max_batch=8, max_delay_ms=1.0,
                             slo_target_p99_ms=50.0)
        with server:
            server.register("m", fitted)
            got = comparable(server.predict_many("m", items * 4))
        assert got == expected * 4
        stats = server.stats("m").models["m@v1"]
        assert stats.slo_target_p99_ms == 50.0
        assert stats.slo_adjustments >= 1  # 64 requests, adjust_every=64
        assert 1 <= stats.effective_batch <= 8
        assert 0.0 <= stats.effective_delay_ms <= 1.0


class TestPriorityShedding:
    def _gated_batcher(self, **kwargs):
        gate = threading.Event()

        def runner(items):
            gate.wait(10.0)
            return items

        return gate, MicroBatcher(runner, max_batch=4, max_queue=8,
                                  **kwargs)

    def test_shed_before_overload_ordering(self):
        """Low-priority traffic degrades at its watermark while higher
        tiers still queue; only a full queue overloads everyone."""
        gate, batcher = self._gated_batcher(
            shed_watermarks={HIGH: 1.0, NORMAL: 0.75, LOW: 0.5})
        futures = [batcher.submit(i) for i in range(4)]  # depth 4 = 50%
        with pytest.raises(RequestShedError):
            batcher.submit("low", priority=LOW)
        futures += [batcher.submit(4), batcher.submit(5)]  # depth 6 = 75%
        with pytest.raises(RequestShedError):
            batcher.submit("normal", priority=NORMAL)
        futures += [batcher.submit("h1", priority=HIGH),
                    batcher.submit("h2", priority=HIGH)]  # depth 8: full
        with pytest.raises(ServerOverloadedError) as err:
            batcher.submit("h3", priority=HIGH)
        assert not isinstance(err.value, RequestShedError)  # full, not shed
        assert batcher.shed_requests == 2
        assert batcher.shed_by_priority == {LOW: 1, NORMAL: 1}
        gate.set()
        batcher.start()
        [f.result(timeout=10) for f in futures]
        batcher.stop()

    def test_shed_is_backpressure_subtype(self):
        assert issubclass(RequestShedError, ServerOverloadedError)

    def test_unmapped_priority_degrades_with_nearest_tier_above(self):
        gate, batcher = self._gated_batcher(shed_watermarks={LOW: 0.5})
        for i in range(4):
            batcher.submit(i)
        with pytest.raises(RequestShedError):
            batcher.submit("x", priority=LOW + 5)  # below LOW: sheds too
        batcher.submit("y", priority=HIGH)  # above all tiers: admitted
        gate.set()
        batcher.start()
        batcher.stop()

    def test_no_watermarks_means_no_early_shedding(self):
        gate, batcher = self._gated_batcher()
        for i in range(8):
            batcher.submit(i, priority=LOW)  # fills the queue, no shed
        assert batcher.shed_requests == 0
        with pytest.raises(ServerOverloadedError):
            batcher.submit("x", priority=HIGH)
        gate.set()
        batcher.start()
        batcher.stop()

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError, match="watermark"):
            MicroBatcher(lambda i: i, shed_watermarks={LOW: 0.0})
        with pytest.raises(ValueError, match="watermark"):
            MicroBatcher(lambda i: i, shed_watermarks={LOW: 1.5})

    def test_server_surfaces_shed_counts(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(max_batch=1, max_delay_ms=1.0, max_queue=4,
                             shed_watermarks={HIGH: 1.0, LOW: 0.25})
        with server:
            server.register("m", fitted)
            model = server._resolve("m")
            gate = threading.Event()
            orig = model.batcher.runner
            model.batcher.runner = (
                lambda payloads: (gate.wait(10.0), orig(payloads))[1])
            futs = [server.submit("m", items[0])]  # flushes, blocks on gate
            deadline = time.perf_counter() + 10.0
            while (model.batcher.batches < 1
                   and time.perf_counter() < deadline):
                time.sleep(0.005)
            futs.append(server.submit("m", items[0]))  # depth 1 = 25%
            with pytest.raises(RequestShedError):
                server.submit("m", items[0], priority=LOW)
            stats = server.stats("m").models["m@v1"]
            assert stats.shed_requests == 1
            gate.set()
            [f.result(timeout=10) for f in futs]


class TestMicroBatcherConcurrency:
    def test_flushes_overlap_across_dispatch_threads(self):
        """With concurrency=2 both flushes must be in the runner at
        once: a single dispatch thread would time out the barrier."""
        barrier = threading.Barrier(2)

        def runner(items):
            barrier.wait(timeout=10.0)
            return items

        batcher = MicroBatcher(runner, max_batch=1, max_delay_ms=0.5,
                               concurrency=2).start()
        futures = [batcher.submit(i) for i in range(2)]
        assert sorted(f.result(timeout=10) for f in futures) == [0, 1]
        batcher.stop()

    def test_flush_on_shutdown_with_queued_items_and_concurrency(self):
        seen = []

        def runner(items):
            seen.extend(items)
            return items

        batcher = MicroBatcher(runner, max_batch=4, concurrency=3)
        futures = [batcher.submit(i) for i in range(10)]  # never started
        batcher.stop()  # drain must flush all 10 through the sweep
        assert [f.result(timeout=1) for f in futures] == list(range(10))
        assert sorted(seen) == list(range(10))

    def test_stop_without_drain_cancels_queued_requests(self):
        batcher = MicroBatcher(lambda items: items, concurrency=2)
        futures = [batcher.submit(i) for i in range(3)]
        batcher.stop(drain=False)
        assert all(f.cancelled() for f in futures)

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError, match="concurrency"):
            MicroBatcher(lambda i: i, concurrency=0)


class TestAsyncServer:
    def test_async_predictions_byte_identical(self):
        import asyncio

        fitted, items, expected = fitted_scenario("timit")

        async def go():
            server = ModelServer(max_batch=8, max_delay_ms=1.0)
            server.register("m", fitted)
            async with AsyncModelServer(server) as srv:
                single = await srv.predict("m", items[0])
                many = await srv.predict_many("m", items)
                return single, many

        single, many = asyncio.run(go())
        assert comparable([single]) == expected[:1]
        assert comparable(many) == expected

    def test_gathered_requests_share_batches(self):
        import asyncio

        fitted, items, expected = fitted_scenario("timit")

        async def go():
            server = ModelServer(max_batch=16, max_delay_ms=20.0)
            server.register("m", fitted)
            async with AsyncModelServer(server) as srv:
                out = await asyncio.gather(
                    *(srv.predict("m", item) for item in items))
                return list(out), srv.stats("m").models["m@v1"]

        out, stats = asyncio.run(go())
        assert comparable(out) == expected
        # All submissions were open before the first await resolved, so
        # the batcher formed multi-request flushes.
        assert stats.max_batch_size > 1

    def test_constructor_rejects_server_plus_knobs(self):
        with pytest.raises(ValueError, match="not both"):
            AsyncModelServer(ModelServer(), max_batch=4)

    def test_overload_raises_in_the_awaiting_coroutine(self):
        import asyncio

        fitted, items, _ = fitted_scenario("timit")

        async def go():
            server = ModelServer(max_queue=1, max_batch=1,
                                 max_delay_ms=1.0)
            server.register("m", fitted)
            model = server._resolve("m")
            gate = threading.Event()
            orig = model.batcher.runner
            model.batcher.runner = (
                lambda payloads: (gate.wait(10.0), orig(payloads))[1])
            srv = await AsyncModelServer(server).start()
            first = server.submit("m", items[0])  # flushed, gated
            deadline = time.perf_counter() + 10.0
            while (model.batcher.batches < 1
                   and time.perf_counter() < deadline):
                await asyncio.sleep(0.005)
            second = server.submit("m", items[0])  # fills the queue
            with pytest.raises(ServerOverloadedError):
                await srv.predict("m", items[0])
            gate.set()
            await asyncio.wrap_future(first)
            await asyncio.wrap_future(second)
            await srv.stop()

        asyncio.run(go())


class TestReplicaServing:
    @pytest.mark.parametrize("name", ["timit", "amazon"])
    def test_replica_served_predictions_byte_identical(self, name):
        fitted, items, expected = fitted_scenario(name)
        server = ModelServer(replicas=2, max_batch=8, max_delay_ms=1.0)
        try:
            with server:
                got = None
                server.register(name, fitted)
                got = comparable(server.predict_many(name, items))
            assert got == expected
            stats = server.stats(name).models[f"{name}@v1"]
            assert stats.replicas == 2
            assert stats.replica_batches >= 1
        finally:
            server.close()

    def test_replica_cache_is_shared_across_the_fleet(self):
        """A result computed on any replica answers repeats fleet-wide:
        the content-addressed cache lives parent-side."""
        fitted, items, expected = fitted_scenario("timit")
        server = ModelServer(replicas=2, max_batch=4, max_delay_ms=1.0,
                             cache_budget_bytes=64e6)
        try:
            with server:
                server.register("m", fitted, warmup_items=items[:3])
                first = comparable(server.predict_many("m", items))
                again = comparable(server.predict_many("m", items))
            assert first == expected
            assert again == expected
            stats = server.stats("m").models["m@v1"]
            assert stats.cache_hits >= len(items)
        finally:
            server.close()

    def test_replica_death_mid_request_recovers_without_drops(self):
        """Kill a replica process, then serve: the pool respawns it,
        replays the model load, retries the batch — no dropped
        responses, byte-identical results."""
        fitted, items, expected = fitted_scenario("timit")
        plan = compile_inference_plan(fitted)
        fleet = ReplicaSet(1, name="death-test")
        try:
            fleet.load("m", plan.program)
            assert comparable(fleet.run_batch("m", items)) == expected
            fleet.pool.actors[0].proc.terminate()
            fleet.pool.actors[0].proc.join(timeout=10.0)
            got = comparable(fleet.run_batch("m", items))
            assert got == expected
            assert fleet.restarts >= 1
        finally:
            fleet.shutdown()

    def test_concurrent_batches_overlap_across_replicas(self):
        """pool.call holds only the target actor's lock: two threads
        driving two replicas make progress concurrently."""
        fitted, items, expected = fitted_scenario("timit")
        plan = compile_inference_plan(fitted)
        fleet = ReplicaSet(2, name="overlap-test")
        results, errors = [None, None], []

        def drive(i):
            try:
                for _ in range(3):
                    results[i] = comparable(fleet.run_batch("m", items))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        try:
            fleet.load("m", plan.program)
            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors
            assert results[0] == expected
            assert results[1] == expected
            assert fleet.batches == 6
        finally:
            fleet.shutdown()

    def test_unknown_slot_raises_in_parent(self):
        fleet = ReplicaSet(1, name="slot-test")
        try:
            with pytest.raises(KeyError, match="no plan loaded"):
                fleet.run_batch("ghost", [1, 2])
        finally:
            fleet.shutdown()

    def test_replicas_require_micro_batching(self):
        with pytest.raises(ValueError, match="micro_batching"):
            ModelServer(replicas=2, micro_batching=False)
        with pytest.raises(ValueError, match="replicas"):
            ModelServer(replicas=-1)

    def test_close_is_idempotent_and_terminal(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer(replicas=1, max_delay_ms=1.0)
        with server:
            server.register("m", fitted)
            server.predict("m", items[0])
        server.close()
        server.close()
        with pytest.raises(ServerOverloadedError, match="stopped"):
            server.predict("m", items[0])


class TestVectorizedServing:
    """VectorizePass end to end: kernel-lowered serving is byte-identical
    to ``fitted.apply`` on raw score vectors — batched, cache on and off,
    single-process and replica-tier — and the rewrite is inspectable."""

    @pytest.mark.parametrize("name",
                             ["timit", "youtube8m", "amazon", "logistic"])
    @pytest.mark.parametrize("cache_budget", [0.0, 1e7],
                             ids=["cache-off", "cache-on"])
    def test_batched_raw_scores_byte_identical(self, name, cache_budget):
        fitted, items, expected = raw_scenario(name)
        server = ModelServer(max_batch=8, max_delay_ms=5.0,
                             cache_budget_bytes=cache_budget)
        with server:
            server.register(name, fitted, warmup_items=items[:3])
            got = comparable(server.predict_many(name, items))
            again = comparable(server.predict_many(name, items))
        assert got == expected
        assert again == expected

    @pytest.mark.parametrize("name",
                             ["timit", "youtube8m", "amazon", "logistic"])
    def test_plan_run_batch_raw_scores_byte_identical(self, name):
        fitted, items, expected = raw_scenario(name)
        plan = compile_inference_plan(fitted, vectorize=True)
        assert comparable(plan.run_batch(items)) == expected
        assert comparable([plan.run_item(x) for x in items]) == expected

    @pytest.mark.parametrize("name", ["timit", "amazon"])
    def test_replica_tier_raw_scores_byte_identical(self, name):
        """Replica workers inherit the kernel stages for free: the
        pickled OpProgram carries the rewritten ops."""
        fitted, items, expected = raw_scenario(name)
        plan = compile_inference_plan(fitted, vectorize=True)
        fleet = ReplicaSet(1, name=f"vectorized-{name}")
        try:
            fleet.load("m", plan.program)
            assert comparable(fleet.run_batch("m", items)) == expected
        finally:
            fleet.shutdown()

    def test_vectorize_knob_and_describe_membership(self):
        fitted, items, _ = fitted_scenario("timit")
        server = ModelServer()
        with server:
            on = server.register("on", fitted)
            off = server.register("off", fitted, vectorize=False)
            assert comparable(server.predict_many("on", items)) == \
                comparable(server.predict_many("off", items))
        assert len(on.plan) < len(off.plan)
        desc = on.plan.describe()
        assert "kernel[" in desc and "fold " in desc
        assert "kernel[" not in off.plan.describe()

    def test_cross_rewrite_cache_sharing(self):
        """Grouped op keys combine deterministically (a stage keeps its
        last member's key), so the content-addressed serving cache keeps
        hitting across the vectorization rewrite: an interpreter-compiled
        version's results answer a kernel-compiled version's repeats."""
        fitted, items, expected = raw_scenario("amazon")
        server = ModelServer(cache_budget_bytes=64e6)
        with server:
            v1 = server.register("m", fitted, version="v1",
                                 vectorize=False, warmup_items=items[:3])
            v2 = server.register("m", fitted, version="v2",
                                 vectorize=True, warmup_items=items[:3])
            assert (v1.plan.key_of(fitted.sink.id)
                    == v2.plan.key_of(fitted.sink.id))
            first = comparable(server.predict_many("m", items,
                                                   version="v1"))
            hits_before = v2.cache.hits
            second = comparable(server.predict_many("m", items,
                                                    version="v2"))
        assert first == expected
        assert second == expected
        assert v2.cache.hits - hits_before >= len(items)
