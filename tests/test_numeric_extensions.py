"""Tests for MinMaxScaler, InterceptAdder, FeatureSelector, Clip."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dataset import Context
from repro.nodes.numeric import (
    ClipTransformer,
    FeatureSelector,
    InterceptAdder,
    MinMaxScaler,
)


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        ctx = Context()
        rng = np.random.default_rng(0)
        rows = [rng.uniform(-5, 10, size=4) for _ in range(200)]
        scaler = MinMaxScaler().fit(ctx.parallelize(rows, 4))
        out = np.vstack([scaler.apply(r) for r in rows])
        assert out.min() >= -1e-12
        assert out.max() <= 1 + 1e-12
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_constant_column_safe(self):
        ctx = Context()
        rows = [np.array([1.0, 5.0]), np.array([2.0, 5.0])]
        scaler = MinMaxScaler().fit(ctx.parallelize(rows, 1))
        out = scaler.apply(np.array([1.5, 5.0]))
        assert np.all(np.isfinite(out))

    def test_empty_raises(self):
        ctx = Context()
        with pytest.raises(ValueError, match="empty"):
            MinMaxScaler().fit(ctx.parallelize([], 1))


class TestInterceptAdder:
    def test_dense(self):
        out = InterceptAdder().apply(np.array([2.0, 3.0]))
        np.testing.assert_allclose(out, [2.0, 3.0, 1.0])

    def test_sparse(self):
        row = sp.csr_matrix(([5.0], ([0], [1])), shape=(1, 3))
        out = InterceptAdder().apply(row)
        assert sp.issparse(out)
        np.testing.assert_allclose(out.toarray().ravel(), [0, 5, 0, 1])


class TestFeatureSelector:
    def test_dense_selection(self):
        sel = FeatureSelector([2, 0])
        np.testing.assert_allclose(sel.apply(np.array([10.0, 20.0, 30.0])),
                                   [30.0, 10.0])

    def test_sparse_selection(self):
        row = sp.csr_matrix(np.array([[1.0, 2.0, 3.0]]))
        out = FeatureSelector([1]).apply(row)
        assert out.shape == (1, 1)
        assert out[0, 0] == 2.0

    def test_empty_indices(self):
        with pytest.raises(ValueError, match="at least one"):
            FeatureSelector([])


class TestClip:
    def test_clips_both_ends(self):
        out = ClipTransformer(-1, 1).apply(np.array([-5.0, 0.5, 5.0]))
        np.testing.assert_allclose(out, [-1.0, 0.5, 1.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="lo"):
            ClipTransformer(2, 1)
