"""§5.1's TIMIT resource-efficiency claim vs a BlueGene supercomputer.

The paper: the TIMIT kernel-SVM pipeline runs in 138 minutes on 64
commodity nodes (512 cores), while a specialized implementation takes ~120
minutes on a 256-node BlueGene (4096 cores) — "11% slower using 1/8 the
cores".  We price the TIMIT pipeline's stage profiles on both simulated
machines and assert the shape: comparable wall time (within ~3x) from ~8x
fewer cores.
"""

import pytest

from repro.cluster.resources import blue_gene_q, r3_4xlarge
from repro.cluster.simulator import ClusterSimulator
from repro.scaling import timit_stages

from _common import fmt_row, once, report


def test_bluegene_resource_efficiency(benchmark):
    def run():
        commodity = r3_4xlarge(64)
        supercomputer = blue_gene_q(256)
        stages = timit_stages()
        # Same per-stage scheduling overhead for both systems; the
        # comparison is hardware efficiency, not scheduler quality.
        t_commodity = ClusterSimulator(commodity, 5.0).total_seconds(stages)
        t_super = ClusterSimulator(supercomputer, 5.0).total_seconds(stages)
        return commodity, supercomputer, t_commodity, t_super

    commodity, supercomputer, t_commodity, t_super = once(benchmark, run)

    core_seconds_commodity = t_commodity * commodity.total_cores
    core_seconds_super = t_super * supercomputer.total_cores
    lines = [
        fmt_row(["system", "nodes", "cores", "minutes", "core-hours"],
                [14, 7, 7, 9, 11]),
        fmt_row(["r3.4xlarge", commodity.num_nodes, commodity.total_cores,
                 f"{t_commodity / 60:.0f}",
                 f"{core_seconds_commodity / 3600:.0f}"], [14, 7, 7, 9, 11]),
        fmt_row(["BlueGene/Q", supercomputer.num_nodes,
                 supercomputer.total_cores, f"{t_super / 60:.0f}",
                 f"{core_seconds_super / 3600:.0f}"], [14, 7, 7, 9, 11]),
        "paper: 138 min on 512 cores vs 120 min on 4096 cores "
        "(1.15x slower with 8x fewer cores => ~7x better per-core "
        "efficiency)",
    ]
    report("bluegene_comparison", lines)

    cores_ratio = supercomputer.total_cores / commodity.total_cores
    assert cores_ratio == pytest.approx(8.0)
    # The substance of the paper's claim: the commodity pipeline spends
    # fewer core-seconds than the supercomputer run — better resource
    # efficiency despite a slower wall clock.
    assert core_seconds_commodity < core_seconds_super
    assert t_super < t_commodity  # raw hardware still wins on wall clock