"""Figure 10: caching strategy vs memory budget on real executions.

The paper compares the greedy materialization algorithm with a rule-based
strategy (keep only estimator results) and Spark's LRU under several
per-node memory budgets: greedy is nearly always best, degrades gracefully
under memory pressure, and LRU can *worsen* with more memory (admission
control admits huge unused blocks).

Here the DAGs execute for real on the instrumented in-process engine, so
the differences are genuine recomputation, measured both in seconds and in
partition computations.
"""

import time


from repro.dataset import Context
from repro.pipelines import amazon_pipeline, voc_pipeline
from repro.workloads import amazon_reviews, voc_images

from _common import fmt_row, once, report

STRATEGIES = ["greedy", "lru", "rule"]
# Budgets in bytes: constrained, moderate, unconstrained.
BUDGETS = [200_000, 5_000_000, 10_000_000_000]


def _builders():
    return {
        "amazon": lambda ctx: amazon_pipeline(
            ctx, amazon_reviews(600, 1, vocab_size=1200, seed=0),
            num_features=500, lbfgs_iters=25),
        "voc": lambda ctx: voc_pipeline(
            ctx, voc_images(40, 1, size=48, num_classes=4, seed=0),
            pca_dims=12, gmm_components=4, sampled_descriptors=100),
    }


def test_fig10_caching_strategies(benchmark):
    widths = [10, 8, 14, 10, 10]
    lines = [fmt_row(["pipeline", "strategy", "budget(MB)", "exec(s)",
                      "computes"], widths)]
    results = {}

    def run():
        for name, build in _builders().items():
            for budget in BUDGETS:
                for strategy in STRATEGIES:
                    ctx = Context()
                    pipe = build(ctx)
                    exec_ctx = Context()
                    start = time.perf_counter()
                    fitted = pipe.fit(level="full", sample_sizes=(15, 30),
                                      cache_strategy=strategy,
                                      mem_budget_bytes=budget, ctx=exec_ctx)
                    elapsed = time.perf_counter() - start
                    computes = exec_ctx.stats.total_computations()
                    results[(name, budget, strategy)] = (
                        fitted.training_report.execute_seconds, computes)
                    lines.append(fmt_row(
                        [name, strategy, f"{budget / 1e6:.1f}",
                         f"{fitted.training_report.execute_seconds:.2f}",
                         computes], widths))
        return results

    once(benchmark, run)
    report("fig10_caching", lines)

    for name in _builders():
        # Unconstrained: greedy computes no more than the rule-based
        # strategy (which recomputes featurization every solver pass).
        big = BUDGETS[-1]
        greedy_c = results[(name, big, "greedy")][1]
        rule_c = results[(name, big, "rule")][1]
        assert greedy_c < rule_c, name
        # Greedy is never beaten on computations by LRU at any budget.
        for budget in BUDGETS:
            lru_c = results[(name, budget, "lru")][1]
            assert results[(name, budget, "greedy")][1] <= lru_c * 1.05, \
                (name, budget)
