"""Table 6: CIFAR time-to-84%-accuracy, TensorFlow vs KeystoneML, 1-32 nodes.

Paper's numbers (minutes):

    machines       1    2    4    8   16   32
    TF (strong)  184   90   57   67  122  292
    TF (weak)    184  135  135  114  xxx  xxx
    KeystoneML   235  125   69   43   32   29

Shapes to reproduce: TF strong scaling bottoms out at ~4 nodes then
degrades (synchronous coordination); TF weak scaling stops converging at
16+ nodes; KeystoneML keeps improving to 32 nodes and overtakes TF by 8.
The cluster is simulated (see repro.baselines.tensorflow_sim for the
model); this is a substitution documented in DESIGN.md.
"""


from repro.baselines import keystone_cifar_time, tensorflow_cifar_time

from _common import fmt_row, once, report

NODES = [1, 2, 4, 8, 16, 32]
PAPER = {
    "tf_strong": [184, 90, 57, 67, 122, 292],
    "tf_weak": [184, 135, 135, 114, None, None],
    "keystone": [235, 125, 69, 43, 32, 29],
}


def test_table6_cifar_scaling(benchmark):
    def run():
        return {
            "tf_strong": [tensorflow_cifar_time(w, "strong") for w in NODES],
            "tf_weak": [tensorflow_cifar_time(w, "weak") for w in NODES],
            "keystone": [keystone_cifar_time(w) for w in NODES],
        }

    results = once(benchmark, run)

    widths = [12] + [9] * len(NODES)
    def fmt(series):
        return [f"{v:.0f}" if v is not None else "xxx" for v in series]

    lines = [fmt_row(["system"] + NODES, widths)]
    for name in ("tf_strong", "tf_weak", "keystone"):
        lines.append(fmt_row([name + " (sim)"] + fmt(results[name]), widths))
        lines.append(fmt_row(
            [name + " (paper)"] + [str(v) if v is not None else "xxx"
                                   for v in PAPER[name]], widths))
    report("table6_tensorflow", lines)

    tf_strong = results["tf_strong"]
    keystone = results["keystone"]
    # TF strong scaling: best at a small cluster, worse at 32 than there.
    best_idx = tf_strong.index(min(tf_strong))
    assert NODES[best_idx] in (2, 4, 8)
    assert tf_strong[-1] > min(tf_strong)
    # TF weak scaling fails to converge at 16 and 32 nodes.
    assert results["tf_weak"][4] is None and results["tf_weak"][5] is None
    # KeystoneML monotonically improves and wins at 32 nodes.
    assert all(a > b for a, b in zip(keystone, keystone[1:]))
    assert keystone[-1] < tf_strong[-1]
    # Crossover at 8+ nodes, TF competitive below (paper's story).
    assert keystone[NODES.index(8)] < tf_strong[NODES.index(8)]
    assert tf_strong[0] < keystone[0]
