"""Shared helpers for the benchmark harness.

Every bench prints the rows/series its paper table or figure reports and
persists them under ``benchmarks/results/`` so the output survives pytest's
capture.  Timing of the headline operation goes through pytest-benchmark's
``benchmark`` fixture (single round — these are experiments, not
micro-benchmarks).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it to benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


@contextmanager
def timed():
    """Context manager yielding a mutable [seconds] cell."""
    cell = [0.0]
    start = time.perf_counter()
    try:
        yield cell
    finally:
        cell[0] = time.perf_counter() - start


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def fmt_row(cols: List, widths: List[int]) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))
