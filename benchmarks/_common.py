"""Shared helpers for the benchmark harness.

Every bench prints the rows/series its paper table or figure reports and
persists them under ``benchmarks/results/`` so the output survives pytest's
capture.  Timing of the headline operation goes through pytest-benchmark's
``benchmark`` fixture (single round — these are experiments, not
micro-benchmarks).

Headline *ratio* metrics (speedups, throughput multiples — the numbers
that should hold on any machine) additionally go through
:func:`record_result`, which appends structured runs to
``benchmarks/results/BENCH_<name>.json``.  CI uploads these as artifacts
(the performance trajectory across commits) and
``benchmarks/check_regression.py`` gates merges on them against the
committed ``benchmarks/baselines.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it to benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def record_result(name: str, metrics: Dict[str, float]) -> str:
    """Append one structured bench run to ``BENCH_<name>.json``.

    The file holds every run recorded on this checkout (CI keeps one per
    job, uploaded as an artifact), newest last::

        {"name": ..., "runs": [{"recorded_at": ..., "cpus": ...,
                                "python": ..., "metrics": {...}}, ...]}

    Record machine-independent ratios, not wall-clock seconds — the
    regression gate compares them across runner generations.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    doc = {"name": name, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as f:
                loaded = json.load(f)
            if isinstance(loaded.get("runs"), list):
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt trajectory file: start a fresh one
    doc["name"] = name
    doc["runs"].append({
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "metrics": {k: float(v) for k, v in metrics.items()},
    })
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


@contextmanager
def timed():
    """Context manager yielding a mutable [seconds] cell."""
    cell = [0.0]
    start = time.perf_counter()
    try:
        yield cell
    finally:
        cell[0] = time.perf_counter() - start


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def fmt_row(cols: List, widths: List[int]) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))
