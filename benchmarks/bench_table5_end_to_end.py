"""Table 5: time-to-accuracy of the five end-to-end pipelines.

The paper trains each application with full optimization and reports
accuracy comparable to the original publications.  We train the scaled
workloads, report accuracy and wall time next to the paper's numbers, and
assert each pipeline clearly beats chance — the scale-independent part of
the claim.
"""

import time


from repro.dataset import Context
from repro.evaluation import accuracy, mean_average_precision, top_k_accuracy
from repro.nodes.numeric import MaxClassifier
from repro.pipelines import (
    amazon_pipeline,
    cifar_pipeline,
    imagenet_pipeline,
    timit_pipeline,
    voc_pipeline,
)
from repro.workloads import (
    amazon_reviews,
    cifar10_images,
    imagenet_images,
    timit_frames,
    voc_images,
)

from _common import fmt_row, once, report

PAPER = {
    "amazon": ("91.6%", "3.3 min"),
    "timit": ("66.06%", "138 min"),
    "imagenet": ("67.43% top-5", "270 min"),
    "voc": ("57.2% mAP", "7 min"),
    "cifar10": ("84.0%", "28.7 min"),
}


def _evaluate(fitted, ctx, wl):
    scores = fitted.apply_dataset(wl.test_data(ctx)).collect()
    preds = [MaxClassifier().apply(s) for s in scores]
    return accuracy(preds, wl.test_labels), scores


def test_table5_time_to_accuracy(benchmark):
    results = {}

    def run():
        ctx = Context()
        wl = amazon_reviews(1200, 300, vocab_size=2000, seed=0)
        start = time.perf_counter()
        fitted = amazon_pipeline(ctx, wl, num_features=1000).fit(
            sample_sizes=(60, 120))
        elapsed = time.perf_counter() - start
        acc, _ = _evaluate(fitted, ctx, wl)
        results["amazon"] = (acc, elapsed, 1 / wl.num_classes)

        ctx = Context()
        wl = timit_frames(1000, 250, dim=128, num_classes=12, seed=0)
        start = time.perf_counter()
        fitted = timit_pipeline(ctx, wl, num_feature_blocks=4,
                                block_size=128, gamma=0.02).fit(
            sample_sizes=(60, 120))
        elapsed = time.perf_counter() - start
        acc, _ = _evaluate(fitted, ctx, wl)
        results["timit"] = (acc, elapsed, 1 / wl.num_classes)

        ctx = Context()
        wl = imagenet_images(140, 70, size=48, num_classes=14, noise=0.3,
                             seed=0)
        start = time.perf_counter()
        fitted = imagenet_pipeline(ctx, wl, pca_dims=12, gmm_components=4,
                                   sampled_descriptors=100).fit(
            sample_sizes=(10, 20))
        elapsed = time.perf_counter() - start
        _acc, scores = _evaluate(fitted, ctx, wl)
        top5 = top_k_accuracy(scores, wl.test_labels, k=5)
        results["imagenet"] = (top5, elapsed, 5 / wl.num_classes)

        ctx = Context()
        wl = voc_images(100, 50, size=48, num_classes=5, noise=0.3, seed=0)
        start = time.perf_counter()
        fitted = voc_pipeline(ctx, wl, pca_dims=16, gmm_components=4,
                              sampled_descriptors=150).fit(
            sample_sizes=(10, 20))
        elapsed = time.perf_counter() - start
        _acc, scores = _evaluate(fitted, ctx, wl)
        m = mean_average_precision(scores, wl.test_labels, wl.num_classes)
        results["voc"] = (m, elapsed, 1 / wl.num_classes)

        ctx = Context()
        wl = cifar10_images(250, 100, num_classes=6, noise=0.3, seed=0)
        start = time.perf_counter()
        fitted = cifar_pipeline(ctx, wl, num_filters=24, patch_size=5).fit(
            sample_sizes=(20, 40))
        elapsed = time.perf_counter() - start
        acc, _ = _evaluate(fitted, ctx, wl)
        results["cifar10"] = (acc, elapsed, 1 / wl.num_classes)
        return results

    once(benchmark, run)

    widths = [10, 16, 12, 10, 18]
    lines = [fmt_row(["dataset", "metric(measured)", "time(s)", "chance",
                      "paper(acc, time)"], widths)]
    for name, (metric, elapsed, chance) in results.items():
        lines.append(fmt_row(
            [name, f"{metric:.3f}", f"{elapsed:.1f}", f"{chance:.3f}",
             str(PAPER[name])], widths))
    report("table5_end_to_end", lines)

    # Every pipeline must clearly beat chance on held-out data.
    for name, (metric, _elapsed, chance) in results.items():
        assert metric > 1.5 * chance, f"{name} too close to chance"
