"""Figure 12: strong scaling of real plans and of the paper's pipelines.

The paper scales from 8 to 128 nodes: ImageNet (featurization-dominated,
embarrassingly parallel) scales near-linearly to 128; Amazon and TIMIT
scale well to 64 and then flatten — Amazon because common-feature selection
ends in an aggregation tree, TIMIT because the dense solve requires
coordination.

Two experiments:

- ``test_fig12_real_plan_strong_scaling`` — the node-count sweep is
  produced by *executing a real PhysicalPlan* (the Figure 2 text
  classification pipeline, optimized with a ShardingPass) under
  ``ShardedBackend``, then re-pricing its measured per-shard stages at
  each cluster size with ``plan_scaling_sweep``.
- ``test_fig12_paper_scale_model`` — the paper-scale stage models
  (Table 3 constants) that reproduce Figure 12's absolute shapes, which
  no laptop-sized real run can.

Set ``REPRO_BENCH_FAST=1`` to shrink the real workload for CI smoke runs.
"""

import os
import time

import numpy as np
import pytest

from repro.cluster.resources import r3_4xlarge
from repro.core.backends import (
    ActorBackend,
    LocalBackend,
    ProcessPoolBackend,
    ShardedBackend,
    plan_scaling_sweep,
    shutdown_actor_pools,
    shutdown_worker_pools,
)
from repro.core.operators import Transformer
from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.passes import ShardingPass
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
)
from repro.scaling import pipeline_scaling
from repro.workloads import amazon_reviews

from _common import fmt_row, once, record_result, report

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")
NODES = [8, 16, 32, 64, 128]
PIPELINES = ["amazon", "timit", "imagenet"]

NUM_TRAIN = 400 if FAST else 2000
VOCAB = 500 if FAST else 2000
SAMPLES = (40, 80) if FAST else (100, 200)
#: simulated task-launch cost per stage for the real-plan sweep, as a
#: fraction of the measured serial run — the fixed cost that bounds
#: strong scaling on real clusters.  Relative to measured time (not a
#: wall-clock constant) so the sweep's *shape* is machine-independent:
#: with overhead o = f*S per stage over n stages, speedup(w) ≈
#: (1/w₀ + n·f) / (1/w + n·f) regardless of how fast the runner is.
REAL_PLAN_OVERHEAD_FRACTION = 0.01


def _total(breakdown):
    return sum(breakdown.values())


def _real_plan():
    wl = amazon_reviews(num_train=NUM_TRAIN, num_test=50,
                        vocab_size=VOCAB, seed=0)
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    pipe = (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(VOCAB // 2), data)
            .and_then(LinearSolver(), data, labels))
    passes = passes_for_level("full", sample_sizes=SAMPLES)
    passes.append(ShardingPass(workers=NODES[0]))
    return Optimizer(passes).optimize(pipe, level="full")


def test_fig12_real_plan_strong_scaling(benchmark):
    """Sweep cluster sizes by executing a real plan under ShardedBackend."""
    plan = _real_plan()

    def run():
        backend = ShardedBackend(resources=r3_4xlarge(NODES[0]),
                                 overhead_per_stage=0.0)
        fitted = plan.execute(backend=backend)
        rep = fitted.training_report
        serial = sum(rep.node_seconds.values())
        overhead = REAL_PLAN_OVERHEAD_FRACTION * serial
        return fitted, plan_scaling_sweep(fitted, NODES,
                                          overhead_per_stage=overhead)

    fitted, sweep = once(benchmark, run)
    rep = fitted.training_report

    widths = [8, 12, 12, 12, 10]
    lines = [f"plan: {rep.backend}, {len(rep.simulated_stages)} simulated "
             f"stages, measured serial {sum(rep.node_seconds.values()):.3f}s",
             fmt_row(["nodes", "Featurize(s)", "Solve(s)", "total(s)",
                      "speedup"], widths)]
    t8 = _total(sweep[NODES[0]])
    for w in NODES:
        b = sweep[w]
        lines.append(fmt_row(
            [w, f"{b.get('Featurization', 0):.4f}",
             f"{b.get('Model Solve', 0):.4f}",
             f"{_total(b):.4f}", f"{t8 / _total(b):.1f}x"], widths))
    lines.append("")
    lines.append("sharding decision: " + next(
        d.describe() for d in plan.decisions if d.name == "ShardingPass"))
    report("fig12_real_plan_scaling", lines)

    assert sorted(sweep) == sorted(NODES)
    # The backend priced the plan itself at the base cluster size; the
    # sweep at that size differs only by the derived per-stage overhead.
    assert rep.simulated_workers == NODES[0]
    assert rep.simulated_seconds == pytest.approx(_total(
        plan_scaling_sweep(fitted, [NODES[0]],
                           overhead_per_stage=0.0)[NODES[0]]))
    assert {"Featurization", "Model Solve"} <= set(sweep[NODES[0]])
    # Strong scaling: monotone non-increasing totals, real speedup by 128
    # nodes, but sublinear (the per-stage overhead bounds it).
    totals = [_total(sweep[w]) for w in NODES]
    assert all(a >= b for a, b in zip(totals, totals[1:]))
    assert totals[0] / totals[-1] > 2.0
    assert totals[0] / totals[-1] < NODES[-1] / NODES[0]
    # The ShardingPass decision is visible on the executed plan.
    assert "sharding:" in plan.explain()
    record_result("fig12_scalability",
                  {"real_plan_speedup": totals[0] / totals[-1]})


# ----------------------------------------------------------------------
# Measured multi-process series (next to the simulated sweep above)
# ----------------------------------------------------------------------

#: worker count of the measured series; also names the gated metric
MEASURED_WORKERS = 2
MEASURED_TRAIN = 1000 if FAST else 3000
MEASURED_VOCAB = 400 if FAST else 1200


def _numpy_light_plan():
    """Text featurization plan where pure-Python work dominates.

    Tokenization/n-grams/term counting hold the GIL and parallelize
    across processes, which is exactly the workload the process backend
    exists for; the solver is kept light so the featurization axis is
    what the measurement sees.
    """
    wl = amazon_reviews(num_train=MEASURED_TRAIN, num_test=60,
                        vocab_size=MEASURED_VOCAB, seed=0)
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    pipe = (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(MEASURED_VOCAB // 2), data)
            .and_then(LinearSolver(lbfgs_iters=5), data, labels))
    plan = Optimizer(passes_for_level("none")).optimize(pipe)
    return wl, plan


def test_fig12_process_backend_measured(benchmark):
    """Real multi-process execution vs the serial reference, wall clock.

    The simulated sweep above prices what a cluster *would* do; this
    series measures what this machine actually does when shards run in
    worker processes.  Byte-identical predictions are asserted; the
    speedup is asserted (and recorded for the regression gate) only on
    multi-core runners — a 1-CPU machine cannot speed anything up.
    """
    cpus = os.cpu_count() or 1
    wl, _ = _numpy_light_plan()

    def run():
        timings = {}
        # Untimed warm runs: pool spawn + BLAS warmup stay out of the
        # measurement (a trained system's steady state).
        _, serial_plan = _numpy_light_plan()
        serial_plan.execute(backend=LocalBackend())
        start = time.perf_counter()
        serial_fitted = serial_plan.execute(backend=LocalBackend())
        timings["serial"] = time.perf_counter() - start

        backend = ProcessPoolBackend(workers=MEASURED_WORKERS,
                                     task_timeout=600.0)
        _, process_plan = _numpy_light_plan()
        process_plan.execute(backend=backend)
        start = time.perf_counter()
        process_fitted = process_plan.execute(backend=backend)
        timings["process"] = time.perf_counter() - start
        return timings, serial_fitted, process_fitted

    timings, serial_fitted, process_fitted = once(benchmark, run)
    test_data = wl.test_data(Context())
    serial_rows = [np.asarray(r).tobytes()
                   for r in serial_fitted.apply_dataset(test_data).collect()]
    process_rows = [np.asarray(r).tobytes()
                    for r in process_fitted.apply_dataset(test_data).collect()]
    speedup = timings["serial"] / timings["process"]

    rep = process_fitted.training_report
    lines = [f"{MEASURED_TRAIN} docs, {cpus} cpu(s), "
             f"workers={MEASURED_WORKERS}",
             fmt_row(["backend", "train(s)", "speedup"], [10, 10, 8]),
             fmt_row(["local", f"{timings['serial']:.3f}", "1.0x"],
                     [10, 10, 8]),
             fmt_row(["process", f"{timings['process']:.3f}",
                      f"{speedup:.2f}x"], [10, 10, 8]),
             f"stat-merged: {rep.process_stat_merged}; "
             f"gathered: {rep.process_gathered}; "
             f"fallback: {rep.process_fallback}"]
    report("fig12_process_backend", lines)

    assert process_rows == serial_rows, \
        "process backend diverged from serial predictions"
    assert rep.process_workers == MEASURED_WORKERS
    assert not rep.process_fallback, rep.process_fallback

    metrics = {"serial_seconds": timings["serial"],
               "process_seconds": timings["process"],
               "workers": MEASURED_WORKERS,
               "cpus": cpus}
    if cpus >= 2:
        # The acceptance bar: real parallelism beats the serial reference
        # on a numpy-light workload.  Only measurable with >= 2 cores.
        metrics[f"speedup_workers_{MEASURED_WORKERS}"] = speedup
        assert speedup > 1.0, (
            f"ProcessPoolBackend(workers={MEASURED_WORKERS}) did not beat "
            f"LocalBackend: {timings['process']:.3f}s vs "
            f"{timings['serial']:.3f}s")
    record_result("process_backend", metrics)
    shutdown_worker_pools()


# ----------------------------------------------------------------------
# Measured actor-runtime iterative series
# ----------------------------------------------------------------------

ACTOR_WORKERS = 2
ACTOR_TRAIN = 600 if FAST else 1600
ACTOR_VOCAB = 250 if FAST else 800
ACTOR_FEATURES = 150 if FAST else 400
ACTOR_CLUSTERS = 6 if FAST else 8
ACTOR_PASSES = 5 if FAST else 6


class Densify(Transformer):
    """Module-level (spawn-picklable): sparse row -> dense vector."""

    def apply(self, row):
        return np.asarray(row.todense()).ravel()


def _iterative_plan(seed: int):
    """Text featurization into an in-worker iterative k-means head.

    Featurization dominates and the solver makes ``ACTOR_PASSES`` passes
    over it: a stateless runtime re-featurizes every pass, persistent
    actors featurize once into the shard cache and then only move
    per-pass statistics.  ``seed`` controls the document content, so
    differently-seeded plans share *no* content-addressed shard state.
    """
    wl = amazon_reviews(num_train=ACTOR_TRAIN, num_test=50,
                        vocab_size=ACTOR_VOCAB, seed=seed)
    ctx = Context()
    data = wl.train_data(ctx)
    pipe = (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(ACTOR_FEATURES), data)
            .and_then(Densify())
            .and_then(KMeansEstimator(ACTOR_CLUSTERS,
                                      max_iter=ACTOR_PASSES, seed=7),
                      data))
    return wl, Optimizer(passes_for_level("none")).optimize(pipe)


def test_fig12_actor_runtime_measured(benchmark):
    """Iterative solving on persistent actors vs the serial reference.

    Three measurements: the serial fit re-featurizes the training data
    on every k-means pass; the actor fit featurizes once into worker
    shard caches and iterates in-worker (cold caches — the pool is
    pre-warmed on differently-seeded documents so process spawn and
    imports stay out of the measurement without seeding any reusable
    state); a refit of the same plan then serves featurization entirely
    from the worker caches.  Byte-identical predictions are asserted for
    both actor fits; speedup is asserted and gated on multi-core runners.
    """
    cpus = os.cpu_count() or 1
    wl, _ = _iterative_plan(seed=0)

    def run():
        timings = {}
        _, warm_plan = _iterative_plan(seed=0)
        warm_plan.execute(backend=LocalBackend())
        _, serial_plan = _iterative_plan(seed=0)
        start = time.perf_counter()
        serial_fitted = serial_plan.execute(backend=LocalBackend())
        timings["serial"] = time.perf_counter() - start

        backend = ActorBackend(workers=ACTOR_WORKERS, task_timeout=600.0,
                               reuse_pool=False)
        _, prewarm_plan = _iterative_plan(seed=1)
        prewarm_plan.execute(backend=backend)
        _, actor_plan = _iterative_plan(seed=0)
        start = time.perf_counter()
        actor_fitted = actor_plan.execute(backend=backend)
        timings["actors"] = time.perf_counter() - start
        _, refit_plan = _iterative_plan(seed=0)
        start = time.perf_counter()
        refit_fitted = refit_plan.execute(backend=backend)
        timings["refit"] = time.perf_counter() - start
        backend.close()
        return timings, serial_fitted, actor_fitted, refit_fitted

    timings, serial_fitted, actor_fitted, refit_fitted = \
        once(benchmark, run)
    test_docs = wl.test_data(Context()).collect()
    serial_rows = [np.asarray(serial_fitted.apply(d)).tobytes()
                   for d in test_docs]
    actor_rows = [np.asarray(actor_fitted.apply(d)).tobytes()
                  for d in test_docs]
    refit_rows = [np.asarray(refit_fitted.apply(d)).tobytes()
                  for d in test_docs]
    speedup = timings["serial"] / timings["actors"]
    refit_speedup = timings["serial"] / timings["refit"]

    cold, warm = actor_fitted.training_report, refit_fitted.training_report
    hit_rate = warm.shard_state_hits / max(
        1, warm.shard_state_hits + warm.shard_state_misses)
    lines = [f"{ACTOR_TRAIN} docs, {ACTOR_PASSES}-pass k-means, "
             f"{cpus} cpu(s), workers={ACTOR_WORKERS}",
             fmt_row(["backend", "train(s)", "speedup"], [12, 10, 8]),
             fmt_row(["local", f"{timings['serial']:.3f}", "1.0x"],
                     [12, 10, 8]),
             fmt_row(["actors", f"{timings['actors']:.3f}",
                      f"{speedup:.2f}x"], [12, 10, 8]),
             fmt_row(["actors-refit", f"{timings['refit']:.3f}",
                      f"{refit_speedup:.2f}x"], [12, 10, 8]),
             f"in-worker iterative: {cold.actor_iterative}; "
             f"cold hits/misses: {cold.shard_state_hits}/"
             f"{cold.shard_state_misses}; "
             f"refit hits/misses: {warm.shard_state_hits}/"
             f"{warm.shard_state_misses}; "
             f"refit shipped: {warm.bytes_shipped}B"]
    report("fig12_actor_runtime", lines)

    assert actor_rows == serial_rows, \
        "actor runtime diverged from serial predictions"
    assert refit_rows == serial_rows, \
        "actor refit diverged from serial predictions"
    assert "KMeansEstimator" in cold.actor_iterative
    assert not cold.process_gathered, cold.process_gathered
    assert not cold.process_fallback, cold.process_fallback
    assert warm.shard_state_hits > 0
    assert warm.shard_state_misses == 0
    assert warm.bytes_shipped < cold.bytes_shipped

    metrics = {"serial_seconds": timings["serial"],
               "actor_seconds": timings["actors"],
               "refit_seconds": timings["refit"],
               "refit_state_hit_rate": hit_rate,
               "workers": ACTOR_WORKERS,
               "cpus": cpus}
    if cpus >= 2:
        # The acceptance bar: persistent workers beat serial end-to-end
        # on an iterative workload (featurize once, iterate in-worker).
        metrics[f"iterative_speedup_workers_{ACTOR_WORKERS}"] = speedup
        metrics["refit_speedup"] = refit_speedup
        assert speedup > 1.0, (
            f"ActorBackend(workers={ACTOR_WORKERS}) did not beat "
            f"LocalBackend on the iterative plan: {timings['actors']:.3f}s "
            f"vs {timings['serial']:.3f}s")
    record_result("actor_runtime", metrics)
    shutdown_actor_pools()


def test_fig12_paper_scale_model(benchmark):
    """Paper-scale stage models: the absolute Figure 12 shapes."""
    def run():
        return {p: pipeline_scaling(p, NODES) for p in PIPELINES}

    results = once(benchmark, run)

    widths = [10, 8] + [12] * 5
    lines = [fmt_row(["pipeline", "nodes", "Loading", "Featurize",
                      "Solve", "Eval", "total(min)"], widths)]
    for p in PIPELINES:
        for w in NODES:
            b = results[p][w]
            lines.append(fmt_row(
                [p, w,
                 f"{b.get('Loading', 0) / 60:.1f}",
                 f"{b.get('Featurization', 0) / 60:.1f}",
                 f"{b.get('Model Solve', 0) / 60:.1f}",
                 f"{b.get('Model Eval', 0) / 60:.1f}",
                 f"{_total(b) / 60:.1f}"], widths))
    speedups = [fmt_row(["pipeline", "8->64", "8->128", "ideal"],
                        [10, 8, 8, 8])]
    for p in PIPELINES:
        t8 = _total(results[p][8])
        speedups.append(fmt_row(
            [p, f"{t8 / _total(results[p][64]):.1f}x",
             f"{t8 / _total(results[p][128]):.1f}x", "8x/16x"],
            [10, 8, 8, 8]))
    report("fig12_scalability", lines + [""] + speedups)

    for p in PIPELINES:
        totals = [_total(results[p][w]) for w in NODES]
        # Everyone improves monotonically out to 128 nodes.
        assert all(a > b for a, b in zip(totals, totals[1:])), p

    # ImageNet scales near-linearly 8 -> 128 (paper: near-perfect).
    img = [_total(results["imagenet"][w]) for w in NODES]
    assert img[0] / img[-1] > 10  # >10x of the ideal 16x
    # Amazon and TIMIT flatten: their 8->128 speedup is clearly below
    # ImageNet's.
    for p in ("amazon", "timit"):
        t = [_total(results[p][w]) for w in NODES]
        assert t[0] / t[-1] < img[0] / img[-1], p
        # Dominant stage matches the paper's breakdown.
    assert results["timit"][8]["Model Solve"] > \
        results["timit"][8]["Featurization"]
    assert results["imagenet"][8]["Featurization"] > \
        results["imagenet"][8]["Model Solve"]
    assert results["amazon"][8]["Featurization"] > \
        results["amazon"][8]["Model Solve"]
