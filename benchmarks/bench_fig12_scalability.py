"""Figure 12: strong scaling of the Amazon, TIMIT and ImageNet pipelines.

The paper scales from 8 to 128 nodes: ImageNet (featurization-dominated,
embarrassingly parallel) scales near-linearly to 128; Amazon and TIMIT
scale well to 64 and then flatten — Amazon because common-feature selection
ends in an aggregation tree, TIMIT because the dense solve requires
coordination.  The cluster is simulated by pricing each stage's cost
profile at each cluster size (the substitution documented in DESIGN.md).
"""

import pytest

from repro.scaling import pipeline_scaling

from _common import fmt_row, once, report

NODES = [8, 16, 32, 64, 128]
PIPELINES = ["amazon", "timit", "imagenet"]


def _total(breakdown):
    return sum(breakdown.values())


def test_fig12_strong_scaling(benchmark):
    def run():
        return {p: pipeline_scaling(p, NODES) for p in PIPELINES}

    results = once(benchmark, run)

    widths = [10, 8] + [12] * 5
    lines = [fmt_row(["pipeline", "nodes", "Loading", "Featurize",
                      "Solve", "Eval", "total(min)"], widths)]
    for p in PIPELINES:
        for w in NODES:
            b = results[p][w]
            lines.append(fmt_row(
                [p, w,
                 f"{b.get('Loading', 0) / 60:.1f}",
                 f"{b.get('Featurization', 0) / 60:.1f}",
                 f"{b.get('Model Solve', 0) / 60:.1f}",
                 f"{b.get('Model Eval', 0) / 60:.1f}",
                 f"{_total(b) / 60:.1f}"], widths))
    speedups = [fmt_row(["pipeline", "8->64", "8->128", "ideal"],
                        [10, 8, 8, 8])]
    for p in PIPELINES:
        t8 = _total(results[p][8])
        speedups.append(fmt_row(
            [p, f"{t8 / _total(results[p][64]):.1f}x",
             f"{t8 / _total(results[p][128]):.1f}x", "8x/16x"],
            [10, 8, 8, 8]))
    report("fig12_scalability", lines + [""] + speedups)

    for p in PIPELINES:
        totals = [_total(results[p][w]) for w in NODES]
        # Everyone improves monotonically out to 128 nodes.
        assert all(a > b for a, b in zip(totals, totals[1:])), p

    # ImageNet scales near-linearly 8 -> 128 (paper: near-perfect).
    img = [_total(results["imagenet"][w]) for w in NODES]
    assert img[0] / img[-1] > 10  # >10x of the ideal 16x
    # Amazon and TIMIT flatten: their 8->128 speedup is clearly below
    # ImageNet's.
    for p in ("amazon", "timit"):
        t = [_total(results[p][w]) for w in NODES]
        assert t[0] / t[-1] < img[0] / img[-1], p
        # Dominant stage matches the paper's breakdown.
    assert results["timit"][8]["Model Solve"] > \
        results["timit"][8]["Featurization"]
    assert results["imagenet"][8]["Featurization"] > \
        results["imagenet"][8]["Model Solve"]
    assert results["amazon"][8]["Featurization"] > \
        results["amazon"][8]["Model Solve"]
