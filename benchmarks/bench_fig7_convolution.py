"""Figure 7: convolution strategy runtime vs filter size.

The paper convolves a 256x256 3-channel image with a bank of 50 filters,
sweeping filter size k in 2..30: BLAS (im2col) wins at small k because the
FFT's fixed cost dominates; FFT is flat in k and wins at large k; the
separable strategy beats both whenever the filters are rank-1.
"""

import time

import numpy as np

from repro.nodes.convolution import (
    BLASConvolver,
    FFTConvolver,
    SeparableConvolver,
)

from _common import fmt_row, once, report

FILTER_SIZES = [2, 4, 6, 10, 16, 24]
IMAGE = np.random.default_rng(0).random((256, 256, 3))
NUM_FILTERS = 16


def _filters(k, separable, seed=1):
    rng = np.random.default_rng(seed)
    if not separable:
        return rng.standard_normal((NUM_FILTERS, k, k, 3))
    out = np.empty((NUM_FILTERS, k, k, 3))
    for i in range(NUM_FILTERS):
        for c in range(3):
            out[i, :, :, c] = np.outer(rng.standard_normal(k),
                                       rng.standard_normal(k))
    return out


def _time_apply(conv, reps=2):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        conv.apply(IMAGE)
        best = min(best, time.perf_counter() - start)
    return best


def test_fig7_convolution_strategies(benchmark):
    lines = [fmt_row(["k", "separable(ms)", "blas(ms)", "fft(ms)"],
                     [4, 14, 10, 10])]
    results = {}

    def run():
        for k in FILTER_SIZES:
            sep_filters = _filters(k, separable=True)
            any_filters = _filters(k, separable=False)
            times = {
                "separable": _time_apply(SeparableConvolver(sep_filters)),
                "blas": _time_apply(BLASConvolver(any_filters)),
                "fft": _time_apply(FFTConvolver(any_filters)),
            }
            results[k] = times
            lines.append(fmt_row(
                [k] + [f"{times[s] * 1e3:.1f}"
                       for s in ("separable", "blas", "fft")],
                [4, 14, 10, 10]))
        return results

    once(benchmark, run)
    report("fig7_convolution", lines)

    # Paper shape: BLAS wins at the smallest k; FFT time is ~flat in k and
    # wins by the largest k; separable beats BLAS once k is large.
    assert results[2]["blas"] < results[2]["fft"]
    assert results[24]["fft"] < results[24]["blas"]
    assert results[24]["fft"] < 3 * results[2]["fft"]
    assert results[24]["separable"] < results[24]["blas"]
