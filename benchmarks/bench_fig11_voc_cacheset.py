"""Figure 11: which VOC nodes the optimizer caches at 80 GB vs 5 GB.

The paper shows the greedy algorithm caching the expensive SIFT /
dimensionality-reduced / normalized intermediates plus the training labels
when memory is plentiful (80 GB/node), and falling back to only the small
late-pipeline outputs when memory is scarce (5 GB/node).  We reproduce the
behaviour on the scaled VOC DAG: the cache set shrinks monotonically with
the budget and keeps the most valuable (latest reused) nodes.
"""


from repro.cluster.resources import local_machine
from repro.core import materialization as mat
from repro.core.cse import eliminate_common_subexpressions
from repro.core.profiler import profile_pipeline
from repro.dataset import Context
from repro.pipelines import voc_pipeline
from repro.workloads import voc_images

from _common import once, report


def test_fig11_voc_cache_set_vs_budget(benchmark):
    ctx = Context()
    wl = voc_images(40, 1, size=48, num_classes=4, seed=0)
    pipe = voc_pipeline(ctx, wl, pca_dims=12, gmm_components=4,
                        sampled_descriptors=100)

    def analyze():
        sink = eliminate_common_subexpressions([pipe.sink])[0]
        profile = profile_pipeline([sink], local_machine(),
                                   sample_sizes=(10, 20))
        problem = mat.MaterializationProblem([sink], profile)
        sizes = {nid: profile.size(nid) for nid in problem.t}
        total = sum(sizes[n.id] for n in problem.candidates())
        budgets = {"plentiful": total * 2, "scarce": total * 0.05}
        node_by_id = {n.id: n for n in problem.order}
        chosen = {}
        for label, budget in budgets.items():
            cache = mat.greedy_cache_set(problem, budget)
            chosen[label] = sorted(node_by_id[i].label for i in cache)
        return problem, chosen, budgets

    problem, chosen, budgets = once(benchmark, analyze)

    lines = []
    for label in ("plentiful", "scarce"):
        lines.append(f"{label} ({budgets[label] / 1e6:.2f} MB): "
                     f"{chosen[label]}")
    report("fig11_voc_cacheset", lines)

    # Plentiful memory caches at least as much as scarce memory, and the
    # plentiful set includes an expensive featurization intermediate.
    assert len(chosen["plentiful"]) >= len(chosen["scarce"])
    assert len(chosen["plentiful"]) > 0
    featurization_labels = {"SIFTExtractor", "apply(PCAEstimator)",
                            "apply(FisherVectorEstimator)", "GrayScaler",
                            "Normalizer", "SignedPower", "ColumnSampler"}
    assert featurization_labels & set(chosen["plentiful"])
