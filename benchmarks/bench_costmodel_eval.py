"""Section 3's cost-model evaluation: how often does the optimizer pick the
empirically fastest physical operator?

The paper reports 90% correct for linear solvers and 84% for PCA, noting
that mistakes happen only when two operators run nearly equally fast.  We
sweep the same two grids at laptop scale, compare the optimizer's choice
against measured winners, and report the hit rate plus the slowdown
incurred by wrong choices (should stay small).

``test_calibration_and_overhead`` additionally gates the observability
loop (PR 8): a traced actor fit must let ``CostModelCalibrator`` reduce
the simulator's RMS log error (``prediction_error_ratio`` >= 1), and the
no-op tracer fast path must fit the fit-time overhead budget with room
to spare (``tracing_overhead_ratio``: the multiple by which a 5%-of-fit
budget exceeds the measured cost of the disabled instrumentation calls
actually hit — >= 1 means tracing-off overhead stays under 5%).

Set ``REPRO_BENCH_FAST=1`` to shrink the workloads for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.cluster.microbench import microbenchmark
from repro.core.stats import DataStats, stats_from_rows
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.pca import PCAEstimator
from repro.workloads import dense_vectors, sparse_vectors

from _common import fmt_row, once, record_result, report, timed

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def _measure_solver_choices():
    res = microbenchmark(matmul_n=256, copy_mb=16)
    rows = []
    hits, total, worst_penalty = 0, 0, 1.0
    configs = ([("sparse", d) for d in (128, 512, 2048)]
               + [("dense", d) for d in (64, 128, 256)])
    for kind, d in configs:
        ctx = Context()
        if kind == "sparse":
            wl = sparse_vectors(num_train=1200, num_test=1, dim=d, seed=0)
        else:
            wl = dense_vectors(num_train=1200, num_test=1, dim=d,
                               num_classes=4, seed=0)
        data = wl.train_data(ctx, 4)
        labels = wl.train_label_vectors(ctx, 4)
        stats = stats_from_rows(data.take(200), full_n=1200).with_k(
            wl.num_classes)

        solver = LinearSolver(lbfgs_iters=40, block_size=max(d // 8, 16))
        predicted = type(solver.optimize(stats, res)).__name__
        measured = {}
        for model, op in solver.options():
            if not model.feasible(stats, res):
                continue
            start = time.perf_counter()
            op.fit(data, labels)
            measured[type(op).__name__] = time.perf_counter() - start
        best = min(measured, key=measured.get)
        penalty = measured[predicted] / measured[best]
        # Count as correct if the optimizer picked the winner or a
        # near-tie (the paper's framing: mistakes only between nearly
        # equivalent operators, where "either should be acceptable").
        hits += predicted == best or penalty <= 1.5
        total += 1
        worst_penalty = max(worst_penalty, penalty)
        rows.append((f"{kind}-{d}", predicted, best, f"{penalty:.2f}x"))
    return rows, hits, total, worst_penalty


def _measure_pca_choices():
    res = microbenchmark(matmul_n=256, copy_mb=16)
    rows = []
    hits, total, worst_penalty = 0, 0, 1.0
    for n, d, k in [(2000, 32, 4), (2000, 128, 8), (20000, 64, 4),
                    (20000, 128, 16)]:
        ctx = Context()
        wl = dense_vectors(num_train=n, num_test=1, dim=d, seed=0)
        data = wl.train_data(ctx, 8)
        stats = DataStats(n=n, d=d)
        est = PCAEstimator(k)
        predicted = type(est.optimize(stats, res)).__name__
        measured = {}
        for model, op in est.options():
            if not model.feasible(stats, res):
                continue
            start = time.perf_counter()
            op.fit(data)
            measured[type(op).__name__] = time.perf_counter() - start
        best = min(measured, key=measured.get)
        penalty = measured[predicted] / measured[best]
        hits += predicted == best or penalty <= 1.5
        total += 1
        worst_penalty = max(worst_penalty, penalty)
        rows.append((f"n={n},d={d},k={k}", predicted, best,
                     f"{penalty:.2f}x"))
    return rows, hits, total, worst_penalty


def test_costmodel_accuracy(benchmark):
    def run():
        return _measure_solver_choices(), _measure_pca_choices()

    (solver_rows, s_hits, s_total, s_pen), \
        (pca_rows, p_hits, p_total, p_pen) = once(benchmark, run)

    widths = [18, 24, 24, 10]
    lines = ["Linear solvers (paper: right 90% of the time):",
             fmt_row(["config", "predicted", "measured-best", "penalty"],
                     widths)]
    lines += [fmt_row(list(r), widths) for r in solver_rows]
    lines.append(f"hit rate: {s_hits}/{s_total}, worst penalty "
                 f"{s_pen:.2f}x")
    lines += ["", "PCA (paper: right 84% of the time):",
              fmt_row(["config", "predicted", "measured-best", "penalty"],
                      widths)]
    lines += [fmt_row(list(r), widths) for r in pca_rows]
    lines.append(f"hit rate: {p_hits}/{p_total}, worst penalty "
                 f"{p_pen:.2f}x")
    report("costmodel_eval", lines)

    # The paper's claim is not perfection (90% / 84%) but absence of
    # disasters: wrong choices must be near-ties, never order-of-magnitude
    # mistakes.
    assert s_hits / s_total >= 0.5
    assert p_hits / p_total >= 0.25
    assert s_pen < 6.0
    assert p_pen < 6.0


# ----------------------------------------------------------------------
# PR 8: calibration quality + tracing overhead budget
# ----------------------------------------------------------------------

NUM_DOCS = 160 if FAST else 600
KMEANS_PASSES = 3 if FAST else 5


def _build_traced_plan():
    from repro.core.operators import Transformer
    from repro.core.optimizer import Optimizer, passes_for_level
    from repro.core.pipeline import Pipeline
    from repro.nodes.learning.kmeans import KMeansEstimator
    from repro.nodes.text import (
        CommonSparseFeatures,
        TermFrequency,
        Tokenizer,
        unit_weighting,
    )
    from repro.workloads import amazon_reviews

    class Densify(Transformer):
        def apply(self, row):
            return np.asarray(row.todense()).ravel()

    wl = amazon_reviews(num_train=NUM_DOCS, num_test=1,
                        vocab_size=200, seed=0)
    ctx = Context()
    data = wl.train_data(ctx)
    pipe = (Pipeline.identity()
            .and_then(Tokenizer())
            .and_then(TermFrequency(unit_weighting()))
            .and_then(CommonSparseFeatures(80), data)
            .and_then(Densify())
            .and_then(KMeansEstimator(4, max_iter=KMEANS_PASSES, seed=7),
                      data))
    return Optimizer(
        passes_for_level("full", sample_sizes=(20, 40))).optimize(pipe)


def _noop_call_seconds(calls: int = 100_000) -> float:
    """Measured per-call cost of the *disabled* instrumentation path."""
    from repro.obs import trace as obs_trace

    assert not obs_trace.enabled()
    start = time.perf_counter()
    for _ in range(calls):
        with obs_trace.span("noop"):
            pass
    return (time.perf_counter() - start) / calls


def test_calibration_and_overhead(benchmark):
    from repro.core.backends import ActorBackend
    from repro.obs import CostModelCalibrator
    from repro.obs import trace as obs_trace

    def run():
        # Spawn-based fits run as subprocess-heavy sections; the kill
        # switch here is pure wall clock, so pipelined timing noise is
        # acceptable — every *gated* number below is a ratio.
        obs_trace.disable()
        with ActorBackend(workers=2, task_timeout=300.0,
                          reuse_pool=False) as backend:
            with timed() as t_off:
                _build_traced_plan().execute(backend=backend)
        noop_seconds = _noop_call_seconds()

        plan = _build_traced_plan()
        tracer = obs_trace.enable()
        try:
            with ActorBackend(workers=2, task_timeout=300.0,
                              reuse_pool=False) as backend:
                fitted = plan.execute(backend=backend)
        finally:
            obs_trace.disable()
        return plan, fitted, tracer, t_off[0], noop_seconds

    plan, fitted, tracer, fit_seconds, noop_seconds = once(benchmark, run)

    calibrator = CostModelCalibrator()
    stages = calibrator.observe_plan(plan, spans=tracer.spans,
                                     report=fitted.training_report)
    result = calibrator.calibrate()

    span_count = len(tracer)
    budget_seconds = 0.05 * fit_seconds
    overhead_ratio = budget_seconds / max(noop_seconds * span_count, 1e-12)

    lines = [
        f"traced actor fit: {fit_seconds:.2f}s untraced, "
        f"{span_count} spans recorded when traced",
        f"disabled-path cost: {noop_seconds * 1e9:.0f} ns/call -> "
        f"{noop_seconds * span_count * 1e6:.1f} us if every span site "
        "were hit with tracing off",
        f"5% overhead budget: {budget_seconds * 1e3:.1f} ms "
        f"(headroom {overhead_ratio:.0f}x)",
        "",
        f"calibration over {stages} stages:",
    ]
    lines += [f"  {line}" for line in calibrator.table()]
    lines.append(result.describe())
    report("costmodel_calibration", lines)

    record_result("costmodel_eval", {
        "prediction_error_ratio": result.error_ratio,
        "tracing_overhead_ratio": overhead_ratio,
    })

    assert stages > 0, "calibrator joined no stages"
    # Geometric-mean fitting can only shrink the RMS log error.
    assert result.error_ratio >= 1.0
    # The 5% overhead budget, enforced here and gated in baselines.json.
    assert overhead_ratio >= 1.0, (
        f"no-op tracing overhead exceeds 5% of fit time "
        f"({overhead_ratio:.2f}x headroom)")
