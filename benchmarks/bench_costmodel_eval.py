"""Section 3's cost-model evaluation: how often does the optimizer pick the
empirically fastest physical operator?

The paper reports 90% correct for linear solvers and 84% for PCA, noting
that mistakes happen only when two operators run nearly equally fast.  We
sweep the same two grids at laptop scale, compare the optimizer's choice
against measured winners, and report the hit rate plus the slowdown
incurred by wrong choices (should stay small).
"""

import time


from repro.cluster.microbench import microbenchmark
from repro.core.stats import DataStats, stats_from_rows
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.pca import PCAEstimator
from repro.workloads import dense_vectors, sparse_vectors

from _common import fmt_row, once, report


def _measure_solver_choices():
    res = microbenchmark(matmul_n=256, copy_mb=16)
    rows = []
    hits, total, worst_penalty = 0, 0, 1.0
    configs = ([("sparse", d) for d in (128, 512, 2048)]
               + [("dense", d) for d in (64, 128, 256)])
    for kind, d in configs:
        ctx = Context()
        if kind == "sparse":
            wl = sparse_vectors(num_train=1200, num_test=1, dim=d, seed=0)
        else:
            wl = dense_vectors(num_train=1200, num_test=1, dim=d,
                               num_classes=4, seed=0)
        data = wl.train_data(ctx, 4)
        labels = wl.train_label_vectors(ctx, 4)
        stats = stats_from_rows(data.take(200), full_n=1200).with_k(
            wl.num_classes)

        solver = LinearSolver(lbfgs_iters=40, block_size=max(d // 8, 16))
        predicted = type(solver.optimize(stats, res)).__name__
        measured = {}
        for model, op in solver.options():
            if not model.feasible(stats, res):
                continue
            start = time.perf_counter()
            op.fit(data, labels)
            measured[type(op).__name__] = time.perf_counter() - start
        best = min(measured, key=measured.get)
        penalty = measured[predicted] / measured[best]
        # Count as correct if the optimizer picked the winner or a
        # near-tie (the paper's framing: mistakes only between nearly
        # equivalent operators, where "either should be acceptable").
        hits += predicted == best or penalty <= 1.5
        total += 1
        worst_penalty = max(worst_penalty, penalty)
        rows.append((f"{kind}-{d}", predicted, best, f"{penalty:.2f}x"))
    return rows, hits, total, worst_penalty


def _measure_pca_choices():
    res = microbenchmark(matmul_n=256, copy_mb=16)
    rows = []
    hits, total, worst_penalty = 0, 0, 1.0
    for n, d, k in [(2000, 32, 4), (2000, 128, 8), (20000, 64, 4),
                    (20000, 128, 16)]:
        ctx = Context()
        wl = dense_vectors(num_train=n, num_test=1, dim=d, seed=0)
        data = wl.train_data(ctx, 8)
        stats = DataStats(n=n, d=d)
        est = PCAEstimator(k)
        predicted = type(est.optimize(stats, res)).__name__
        measured = {}
        for model, op in est.options():
            if not model.feasible(stats, res):
                continue
            start = time.perf_counter()
            op.fit(data)
            measured[type(op).__name__] = time.perf_counter() - start
        best = min(measured, key=measured.get)
        penalty = measured[predicted] / measured[best]
        hits += predicted == best or penalty <= 1.5
        total += 1
        worst_penalty = max(worst_penalty, penalty)
        rows.append((f"n={n},d={d},k={k}", predicted, best,
                     f"{penalty:.2f}x"))
    return rows, hits, total, worst_penalty


def test_costmodel_accuracy(benchmark):
    def run():
        return _measure_solver_choices(), _measure_pca_choices()

    (solver_rows, s_hits, s_total, s_pen), \
        (pca_rows, p_hits, p_total, p_pen) = once(benchmark, run)

    widths = [18, 24, 24, 10]
    lines = ["Linear solvers (paper: right 90% of the time):",
             fmt_row(["config", "predicted", "measured-best", "penalty"],
                     widths)]
    lines += [fmt_row(list(r), widths) for r in solver_rows]
    lines.append(f"hit rate: {s_hits}/{s_total}, worst penalty "
                 f"{s_pen:.2f}x")
    lines += ["", "PCA (paper: right 84% of the time):",
              fmt_row(["config", "predicted", "measured-best", "penalty"],
                      widths)]
    lines += [fmt_row(list(r), widths) for r in pca_rows]
    lines.append(f"hit rate: {p_hits}/{p_total}, worst penalty "
                 f"{p_pen:.2f}x")
    report("costmodel_eval", lines)

    # The paper's claim is not perfection (90% / 84%) but absence of
    # disasters: wrong choices must be near-ties, never order-of-magnitude
    # mistakes.
    assert s_hits / s_total >= 0.5
    assert p_hits / p_total >= 0.25
    assert s_pen < 6.0
    assert p_pen < 6.0
