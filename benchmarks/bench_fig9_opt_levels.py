"""Figure 9: impact of optimization levels on three applications.

The paper compares None / whole-pipeline-only / full optimization on the
Amazon, TIMIT and VOC pipelines with a per-stage breakdown: Amazon gains 7x
from whole-pipeline optimization (caching features before the iterative
solve); TIMIT gains 8x mostly from solver selection; VOC gains 12-15x from
both.  Shapes to reproduce: every pipeline gets faster with more
optimization, and the dominant source of improvement differs per pipeline.
"""

import time


from repro.dataset import Context
from repro.pipelines import amazon_pipeline, timit_pipeline, voc_pipeline
from repro.workloads import amazon_reviews, timit_frames, voc_images

from _common import fmt_row, once, report

LEVELS = ["none", "pipe", "full"]


def _builders():
    return {
        "amazon": lambda ctx: amazon_pipeline(
            ctx, amazon_reviews(800, 1, vocab_size=1500, seed=0),
            num_features=600, lbfgs_iters=25),
        "timit": lambda ctx: timit_pipeline(
            ctx, timit_frames(600, 1, dim=96, num_classes=10, seed=0),
            num_feature_blocks=3, block_size=96),
        "voc": lambda ctx: voc_pipeline(
            ctx, voc_images(50, 1, size=48, num_classes=4, seed=0),
            pca_dims=12, gmm_components=4, sampled_descriptors=100),
    }


def test_fig9_optimization_levels(benchmark):
    widths = [10, 6, 10, 10, 10, 10]
    lines = [fmt_row(["pipeline", "level", "total(s)", "optimize",
                      "featurize", "solve"], widths)]
    totals = {}

    def run():
        for name, build in _builders().items():
            for level in LEVELS:
                ctx = Context()
                pipe = build(ctx)
                start = time.perf_counter()
                fitted = pipe.fit(level=level, sample_sizes=(20, 40))
                total = time.perf_counter() - start
                stages = fitted.training_report.stage_seconds()
                totals[(name, level)] = total
                lines.append(fmt_row(
                    [name, level, f"{total:.2f}",
                     f"{stages['Optimize']:.2f}",
                     f"{stages['Featurize']:.2f}",
                     f"{stages['Solve']:.2f}"], widths))
        return totals

    once(benchmark, run)

    speedups = [fmt_row(["pipeline", "pipe-only", "full"], [10, 10, 10])]
    for name in _builders():
        speedups.append(fmt_row(
            [name,
             f"{totals[(name, 'none')] / totals[(name, 'pipe')]:.1f}x",
             f"{totals[(name, 'none')] / totals[(name, 'full')]:.1f}x"],
            [10, 10, 10]))
    report("fig9_opt_levels", lines + [""] + speedups)

    # Paper shape: full optimization beats no optimization on every
    # pipeline, by a substantial factor on at least one.
    ratios = [totals[(n, "none")] / totals[(n, "full")]
              for n in _builders()]
    assert all(r > 1.0 for r in ratios)
    assert max(ratios) > 2.0
