"""Table 2: exact vs approximate, local vs distributed PCA runtimes.

The paper sweeps n in {1e4, 1e6}, d in {256, 4096}, k per column and finds:
TSVD beats SVD when k << d; distributed implementations win at large n and
lose at small n (coordination overhead); the exact local SVD fails (x) on
the big configurations.

Scaled down (n in {2000, 20000}, d in {32, 256}) the same orderings hold.
"""

import time


from repro.dataset import Context
from repro.nodes.learning.pca import (
    DistributedSVD,
    DistributedTSVD,
    LocalSVD,
    LocalTSVD,
)
from repro.workloads import dense_vectors

from _common import fmt_row, once, report

CONFIGS = [
    # (n, d, k)
    (2_000, 32, 4),
    (2_000, 256, 8),
    (20_000, 32, 4),
    (20_000, 256, 8),
]

IMPLS = {
    "svd": LocalSVD,
    "tsvd": LocalTSVD,
    "dist-svd": DistributedSVD,
    "dist-tsvd": DistributedTSVD,
}


def test_table2_pca_runtimes(benchmark):
    lines = [fmt_row(["n", "d", "k"] + list(IMPLS),
                     [8, 6, 4] + [10] * len(IMPLS))]
    results = {}

    def run():
        for n, d, k in CONFIGS:
            ctx = Context()
            wl = dense_vectors(num_train=n, num_test=1, dim=d, seed=0)
            data = wl.train_data(ctx, 8)
            times = {}
            for name, impl in IMPLS.items():
                start = time.perf_counter()
                impl(k).fit(data)
                times[name] = time.perf_counter() - start
            results[(n, d, k)] = times
            lines.append(fmt_row(
                [n, d, k] + [f"{times[m]:.3f}" for m in IMPLS],
                [8, 6, 4] + [10] * len(IMPLS)))
        return results

    once(benchmark, run)
    report("table2_pca", lines)

    # Table 2 shape: with k << d, the truncated method beats full SVD on
    # the widest configuration.
    wide = results[(20_000, 256, 8)]
    assert wide["tsvd"] < wide["svd"]
    # Exact local SVD time grows superlinearly in d (n fixed).
    assert results[(20_000, 256, 8)]["svd"] > \
        2 * results[(20_000, 32, 4)]["svd"]
