"""Ablation: greedy materialization (Algorithm 1) vs the exact optimum.

The paper rejects the ILP formulation because solving it at optimization
time is too slow, and argues the greedy algorithm "works efficiently and
accurately in practice".  This bench quantifies both claims on random
costed DAGs: solution quality (estimated runtime vs the exhaustive
optimum) and optimization cost (seconds to choose the cache set).
"""

import time

import numpy as np

from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.operators import Transformer
from repro.core.profiler import NodeProfile, PipelineProfile

from _common import fmt_row, once, report


class _Op(Transformer):
    def __init__(self, weight=1):
        self.weight = weight

    def apply(self, x):
        return x


def _random_problem(rng, n_nodes, branching=0.3):
    """Random DAG: mostly a chain with occasional branch/merge."""
    src = g.source("data")
    nodes = [src]
    frontier = [src]
    for _ in range(n_nodes):
        parent = frontier[-1]
        # Realistic pipelines: most nodes are single-pass transformers,
        # with occasional iterative estimators (solvers, EM) mixed in.
        weight = 1 if rng.random() < 0.7 else int(rng.integers(2, 21))
        node = g.OpNode(g.TRANSFORMER, _Op(weight), (parent,))
        nodes.append(node)
        if rng.random() < branching and len(frontier) > 1:
            # Merge two frontier branches with a gather.
            other = frontier[-2]
            merged = g.OpNode(g.GATHER, None, (node, other))
            nodes.append(merged)
            frontier = frontier[:-2] + [merged]
        else:
            frontier.append(node)
    sink = frontier[-1]
    profile = PipelineProfile()
    for n in nodes:
        profile.nodes[n.id] = NodeProfile(
            node=n, t_seconds=float(rng.uniform(0.1, 10.0)),
            size_bytes=float(rng.uniform(1.0, 100.0)), stats=None,
            weight=n.weight)
    return mat.MaterializationProblem([sink], profile)


def test_ablation_greedy_vs_exact(benchmark):
    rng = np.random.default_rng(7)
    rows = []

    def run():
        quality_ratios = []
        greedy_times, exact_times = [], []
        for trial in range(20):
            n_nodes = int(rng.integers(4, 11))
            problem = _random_problem(rng, n_nodes)
            budget = float(rng.uniform(50, 400))

            start = time.perf_counter()
            greedy = mat.greedy_cache_set(problem, budget)
            greedy_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            exact = mat.exact_cache_set(problem, budget)
            exact_times.append(time.perf_counter() - start)

            t_greedy = problem.estimate_runtime(greedy)
            t_exact = problem.estimate_runtime(exact)
            t_none = problem.estimate_runtime(set())
            ratio = t_greedy / max(t_exact, 1e-12)
            quality_ratios.append(ratio)
            rows.append((trial, n_nodes, f"{t_none:.1f}", f"{t_greedy:.1f}",
                         f"{t_exact:.1f}", f"{ratio:.3f}"))
        return quality_ratios, greedy_times, exact_times

    quality, g_times, e_times = once(benchmark, run)

    widths = [6, 7, 10, 10, 10, 8]
    lines = [fmt_row(["trial", "nodes", "uncached", "greedy", "exact",
                      "ratio"], widths)]
    lines += [fmt_row(list(r), widths) for r in rows]
    lines.append("")
    lines.append(f"mean quality ratio (greedy/exact): "
                 f"{np.mean(quality):.3f}; worst {max(quality):.3f}")
    lines.append(f"mean choose time: greedy {np.mean(g_times) * 1e3:.2f}ms, "
                 f"exact {np.mean(e_times) * 1e3:.2f}ms "
                 f"({np.mean(e_times) / max(np.mean(g_times), 1e-12):.0f}x)")
    report("ablation_greedy_vs_exact", lines)

    # Greedy is never better than exact (sanity), on average within 10%,
    # never worse than 2x, and much cheaper to run.
    assert all(r >= 1.0 - 1e-9 for r in quality)
    assert float(np.mean(quality)) < 1.10
    assert max(quality) < 2.0
