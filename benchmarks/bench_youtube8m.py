"""Section 5.2's YouTube-8M replication: linear vs converged logistic model.

The paper trains a linear classifier on the pre-featurized videos in 3
minutes and a converged logistic regression (31 batch gradient
evaluations) in 90 minutes — the point being that the cheap linear solve
gets comparable accuracy far faster.  We reproduce the shape at laptop
scale: the linear solve is much faster than the converged logistic
regression with comparable accuracy.
"""

import time


from repro.dataset import Context
from repro.evaluation import accuracy
from repro.nodes.numeric import MaxClassifier
from repro.pipelines import youtube_pipeline
from repro.workloads import youtube8m

from _common import fmt_row, once, report


def test_youtube8m_linear_vs_logistic(benchmark):
    wl = youtube8m(2500, 600, dim=256, num_classes=20, seed=0)
    results = {}

    def run():
        for model in ("linear", "logistic"):
            ctx = Context()
            pipe = youtube_pipeline(ctx, wl, model=model, max_iter=31)
            start = time.perf_counter()
            fitted = pipe.fit(sample_sizes=(80, 160))
            elapsed = time.perf_counter() - start
            scores = fitted.apply_dataset(wl.test_data(ctx)).collect()
            preds = [MaxClassifier().apply(s) for s in scores]
            results[model] = (accuracy(preds, wl.test_labels), elapsed)
        return results

    once(benchmark, run)

    widths = [10, 10, 10]
    lines = [fmt_row(["model", "accuracy", "time(s)"], widths)]
    for model, (acc, elapsed) in results.items():
        lines.append(fmt_row([model, f"{acc:.3f}", f"{elapsed:.2f}"],
                             widths))
    lines.append("paper: linear 3 min, converged logistic 90 min "
                 "(21% mAP vs authors' 28%)")
    report("youtube8m", lines)

    lin_acc, lin_time = results["linear"]
    log_acc, log_time = results["logistic"]
    assert lin_time < log_time          # linear much faster
    assert lin_acc > 0.5                # chance = 0.05
    assert abs(lin_acc - log_acc) < 0.15  # comparable accuracy
