"""Figure 6: solver runtime vs feature count, sparse and dense workloads.

The paper's result (16 nodes, d = 1k..16k): on sparse Amazon features
L-BFGS is 5-20x faster than exact and 26-260x faster than the block solver,
and the exact solver crashes above 4k features; on dense TIMIT features the
exact solver wins below ~8k and the block solver overtakes beyond.

Scaled down (in-process, d = 128..1024 sparse / 64..256 dense) the same
orderings hold; the final assertions check the paper's shape.
"""

import time


from repro.dataset import Context
from repro.nodes.learning.linear import (
    BlockCoordinateSolver,
    LBFGSSolver,
    LocalQRSolver,
)
from repro.workloads import dense_vectors, sparse_vectors

from _common import fmt_row, once, report

SPARSE_DIMS = [256, 512, 1024, 2048]
DENSE_DIMS = [64, 128, 256]


def _solvers(d):
    # Fixed block size (like the paper's 1024-at-100k scale): the block
    # count, and with it the scan count, grows with d.
    return {
        "exact": LocalQRSolver(),
        "block": BlockCoordinateSolver(block_size=128, epochs=3),
        "lbfgs": LBFGSSolver(max_iter=40),
    }


def _time_fit(solver, data, labels):
    start = time.perf_counter()
    solver.fit(data, labels)
    return time.perf_counter() - start


def test_fig6_sparse_amazon_like(benchmark):
    lines = [fmt_row(["d", "exact(s)", "block(s)", "lbfgs(s)"],
                     [8, 10, 10, 10])]
    results = {}

    def run():
        for d in SPARSE_DIMS:
            ctx = Context()
            wl = sparse_vectors(num_train=1500, num_test=1, dim=d,
                                nnz_per_row=20, seed=0)
            data = wl.train_data(ctx, 4)
            labels = wl.train_label_vectors(ctx, 4)
            times = {name: _time_fit(s, data, labels)
                     for name, s in _solvers(d).items()}
            results[d] = times
            lines.append(fmt_row(
                [d] + [f"{times[k]:.3f}" for k in ("exact", "block",
                                                   "lbfgs")],
                [8, 10, 10, 10]))
        return results

    once(benchmark, run)
    report("fig6_sparse", lines)

    # Paper shape: on sparse data LBFGS beats exact, block is slowest,
    # and the gap widens with d.
    largest = results[SPARSE_DIMS[-1]]
    assert largest["lbfgs"] < largest["exact"]
    assert largest["block"] > largest["lbfgs"]


def test_fig6_dense_timit_like(benchmark):
    lines = [fmt_row(["d", "exact(s)", "block(s)", "lbfgs(s)"],
                     [8, 10, 10, 10])]
    results = {}

    def run():
        for d in DENSE_DIMS:
            ctx = Context()
            wl = dense_vectors(num_train=1500, num_test=1, dim=d,
                               num_classes=8, seed=0)
            data = wl.train_data(ctx, 4)
            labels = wl.train_label_vectors(ctx, 4)
            times = {name: _time_fit(s, data, labels)
                     for name, s in _solvers(d).items()}
            results[d] = times
            lines.append(fmt_row(
                [d] + [f"{times[k]:.3f}" for k in ("exact", "block",
                                                   "lbfgs")],
                [8, 10, 10, 10]))
        return results

    once(benchmark, run)
    report("fig6_dense", lines)

    # Paper shape: on small dense problems the exact solver is fastest.
    smallest = results[DENSE_DIMS[0]]
    assert smallest["exact"] < smallest["lbfgs"]
