"""Ablation: operator fusion (stage packing, paper §2.3).

KeystoneML packs operators up to pipeline breakers into the same job.  The
in-process analogue fuses single-consumer transformer chains into one
partition pass.  This bench measures the dispatch overhead saved on a
transformer-heavy text pipeline and verifies results are unchanged.
"""

import time

import numpy as np

from repro.core import passes_for_level
from repro.dataset import Context
from repro.pipelines import amazon_pipeline
from repro.workloads import amazon_reviews

from _common import fmt_row, once, report


def _passes(fuse):
    """The level="pipe" stack, with fusion as an explicit pass."""
    return passes_for_level("pipe", sample_sizes=(30, 60), fuse=fuse)


def test_ablation_fusion(benchmark):
    wl = amazon_reviews(1200, 100, vocab_size=1500, seed=0)

    def run():
        results = {}
        for fuse in (False, True):
            ctx = Context()
            pipe = amazon_pipeline(ctx, wl, num_features=600,
                                   lbfgs_iters=20)
            start = time.perf_counter()
            fitted = pipe.fit(level="pipe", passes=_passes(fuse))
            elapsed = time.perf_counter() - start
            test_ctx = Context()
            sample_scores = fitted.apply_dataset(
                wl.test_data(test_ctx)).take(10)
            results[fuse] = (elapsed, fitted, sample_scores)
        return results

    results = once(benchmark, run)

    t_plain, _, scores_plain = results[False]
    t_fused, fitted_fused, scores_fused = results[True]
    lines = [
        fmt_row(["config", "fit(s)"], [10, 10]),
        fmt_row(["plain", f"{t_plain:.2f}"], [10, 10]),
        fmt_row(["fused", f"{t_fused:.2f}"], [10, 10]),
        f"speedup: {t_plain / t_fused:.2f}x",
    ]
    report("ablation_fusion", lines)

    # Fusion never changes results.
    for a, b in zip(scores_plain, scores_fused):
        np.testing.assert_allclose(np.asarray(a, dtype=float),
                                   np.asarray(b, dtype=float), atol=1e-10)
    # And never slows fitting down catastrophically (dispatch savings are
    # modest at laptop scale; the guard is against regression).
    assert t_fused < 2.0 * t_plain
