"""Table 1: resource requirements of the linear solvers.

Prints each solver's cost profile (compute / network / memory terms) at
paper-scale statistics, verifying the asymptotic shapes of Table 1:
Local QR O(nd(d+k)), Dist. QR O(nd(d+k)/w), L-BFGS O(insk/w),
Block O(ind(b+k)/w).
"""


from repro.cluster.resources import r3_4xlarge
from repro.core.stats import DataStats
from repro.nodes.learning.linear import LinearSolver

from _common import fmt_row, once, report


SCENARIOS = {
    "amazon-sparse": DataStats(n=65_000_000, d=100_000, k=2, sparsity=0.001),
    "timit-dense": DataStats(n=2_251_569, d=65_536, k=147, sparsity=1.0),
    "small-dense": DataStats(n=1_000_000, d=1024, k=2, sparsity=1.0),
}


def test_table1_solver_cost_profiles(benchmark):
    res = r3_4xlarge(16)
    solver = LinearSolver()
    lines = [fmt_row(["scenario", "solver", "compute(GFLOP)",
                      "network(GB)", "memory(GB)", "feasible"],
                     [14, 16, 16, 12, 12, 8])]

    def build_table():
        rows = []
        for scen_name, stats in SCENARIOS.items():
            for model, _op in solver.options():
                profile = model.cost(stats, res.num_nodes)
                rows.append(fmt_row([
                    scen_name, model.name,
                    f"{profile.flops / 1e9:.1f}",
                    f"{profile.network / 1e9:.3f}",
                    f"{profile.bytes / 1e9:.1f}",
                    model.feasible(stats, res)],
                    [14, 16, 16, 12, 12, 8]))
        return rows

    lines += once(benchmark, build_table)
    report("table1_solver_costs", lines)

    # Table 1 shape checks: distributed QR compute is ~1/w of local QR.
    models = {m.name: m for m, _ in solver.options()}
    stats = SCENARIOS["small-dense"]
    local = models["local-qr"].cost(stats, 16)
    dist = models["distributed-qr"].cost(stats, 16)
    assert dist.flops < local.flops / 8
    # Sparse L-BFGS compute scales with nnz, not d.
    sparse = SCENARIOS["amazon-sparse"]
    lbfgs_sparse = models["lbfgs"].cost(sparse, 16)
    dense_version = DataStats(n=sparse.n, d=sparse.d, k=sparse.k,
                              sparsity=1.0)
    lbfgs_dense = models["lbfgs"].cost(dense_version, 16)
    assert lbfgs_sparse.flops < lbfgs_dense.flops / 100
