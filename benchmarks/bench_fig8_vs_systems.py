"""Figure 8: KeystoneML's optimizing solver vs Vowpal Wabbit vs SystemML.

The paper solves binary Amazon (sparse) and binary TIMIT (dense) problems
across feature sizes with identical objectives: KeystoneML wins because it
selects an algorithm per input shape; VW always runs online SGD; SystemML
always runs the same conjugate-gradient algorithm behind a data-conversion
step, with poor sparse support in v0.9.

Two sections:

1. **Measured (laptop scale)** — every system must reach within 10% of the
   exact least-squares optimum; we report time of the cheapest converging
   configuration.  In-process numpy removes the distributed constant
   factors that penalized SystemML on a real cluster, so the measured
   assertions are the scale-independent ones: KeystoneML always converges
   and always beats the specialized online system, while VW diverges on
   the wide sparse problems.
2. **Modeled (paper scale, 16 x r3.4xlarge)** — the systems' cost models
   priced on the paper's dataset statistics reproduce Figure 8's ordering:
   KeystoneML ahead everywhere, by orders of magnitude on sparse data
   (SystemML v0.9 densifies), and ~5x at 65k features (the paper's
   reported 5.5x).
"""

import time


from repro.baselines import SystemMLSolver, VowpalWabbitSolver
from repro.cluster.microbench import microbenchmark
from repro.cluster.resources import r3_4xlarge
from repro.core.stats import DataStats, stats_from_rows
from repro.cost.model import execution_seconds
from repro.cost.profile import CostProfile
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver, LocalQRSolver
from repro.workloads import dense_vectors, sparse_vectors

from _common import fmt_row, once, report

SPARSE_DIMS = [512, 1024, 2048]
DENSE_DIMS = [128, 256]
LOSS_SLACK = 1.10

_RESOURCES = None


def _resources():
    global _RESOURCES
    if _RESOURCES is None:
        # Collected once per cluster in the real system; not timed.
        _RESOURCES = microbenchmark(matmul_n=256, copy_mb=16, scan_rows=500)
    return _RESOURCES


def _time_to_converge(make_solver, data, labels, target, budgets):
    """Time of the cheapest budget reaching the target loss, else last."""
    elapsed = float("inf")
    for budget in budgets:
        solver = make_solver(budget)
        start = time.perf_counter()
        model = solver.fit(data, labels)
        elapsed = time.perf_counter() - start
        if model.training_loss(data, labels) <= target:
            return elapsed, True
    return elapsed, False


def _run_grid(kind, dims, results, lines):
    for d in dims:
        ctx = Context()
        if kind == "sparse":
            wl = sparse_vectors(num_train=1500, num_test=1, dim=d, seed=0)
        else:
            wl = dense_vectors(num_train=1500, num_test=1, dim=d, seed=0)
        data = wl.train_data(ctx, 4)
        labels = wl.train_label_vectors(ctx, 4)
        optimum = LocalQRSolver().fit(data, labels).training_loss(data,
                                                                  labels)
        # Converged = closes 99% of the gap between the zero model and the
        # optimum (robust when the optimum is ~0 on interpolating problems).
        import numpy as np

        from repro.nodes.learning.linear import LinearMapper
        d_feat = 2
        zero_loss = LinearMapper(
            np.zeros((d, wl.num_classes))).training_loss(data, labels)
        target = optimum + 0.01 * (zero_loss - optimum)

        stats = stats_from_rows(data.take(200), full_n=1500).with_k(2)
        solver = LinearSolver(lbfgs_iters=100)
        start = time.perf_counter()
        physical = solver.optimize(stats, _resources())
        model = physical.fit(data, labels)
        t_ks = time.perf_counter() - start
        ks_converged = model.training_loss(data, labels) <= target
        choice = type(physical).__name__

        t_vw, vw_ok = _time_to_converge(
            lambda p: VowpalWabbitSolver(passes=p), data, labels, target,
            budgets=[10, 40, 160, 640])
        t_sysml, sysml_ok = _time_to_converge(
            lambda i: SystemMLSolver(max_iter=i), data, labels, target,
            budgets=[10, 20, 40, 80, 160, 320])

        results[(kind, d)] = {
            "keystone": t_ks, "vw": t_vw if vw_ok else float("inf"),
            "systemml": t_sysml if sysml_ok else float("inf"),
            "choice": choice, "ks_converged": ks_converged,
        }
        lines.append(fmt_row(
            [f"{kind}-{d}", f"{t_ks:.3f}",
             f"{t_vw:.3f}" + ("" if vw_ok else " (diverged)"),
             f"{t_sysml:.3f}" + ("" if sysml_ok else " (diverged)"),
             choice], [14, 12, 18, 18, 24]))


# ----------------------------------------------------------------------
# Paper-scale modeled comparison
# ----------------------------------------------------------------------

def _keystone_modeled(stats, res):
    solver = LinearSolver(lbfgs_iters=50)
    best = None
    for model, op in solver.options():
        if not model.feasible(stats, res):
            continue
        cost = execution_seconds(model.cost(stats, res.num_nodes), res)
        if best is None or cost < best[0]:
            best = (cost, type(op).__name__)
    assert best is not None, "no feasible solver"
    return best


def _vw_modeled(stats, res, passes=100):
    """Online SGD: compute like L-BFGS per pass, but the model is
    broadcast-averaged every pass over a star topology (VW's allreduce).
    Reaching L-BFGS's loss takes SGD ~2x the passes (the measured section
    above shows 16-64x or outright divergence; 2x is charitable)."""
    n, d, k, s = stats.n, stats.d, stats.k, max(stats.nnz_per_row, 1)
    w = res.num_nodes
    profile = CostProfile(
        flops=6.0 * passes * n * s * k / w,
        bytes=8.0 * passes * n * s / w,
        network=8.0 * passes * d * k * w,  # star allreduce, loaded root
        tasks=float(passes))
    return execution_seconds(profile, res)


def _systemml_modeled(stats, res, cg_iters=100):
    """CG on the normal equations; v0.9 densifies sparse inputs, and a
    conversion job reshuffles the data into binary-block format first.
    CG on A^T A pays the squared condition number, so matching L-BFGS's
    loss takes ~2x the passes."""
    n, d, k = stats.n, stats.d, stats.k
    w = res.num_nodes
    dense_bytes = 8.0 * n * d
    convert = CostProfile(bytes=2.0 * dense_bytes / w,
                          network=dense_bytes / w, tasks=1.0)
    per_iter = CostProfile(flops=4.0 * n * d * k / w,
                           bytes=dense_bytes / w,
                           network=8.0 * d * k * 4.0,
                           tasks=1.0)
    return execution_seconds(convert + per_iter * cg_iters, res)


def test_fig8_vs_other_systems(benchmark):
    lines = [fmt_row(["config", "keystone(s)", "vw(s)", "systemml(s)",
                      "chosen-solver"], [14, 12, 18, 18, 24])]
    results = {}

    def run():
        _run_grid("sparse", SPARSE_DIMS, results, lines)
        _run_grid("dense", DENSE_DIMS, results, lines)
        return results

    once(benchmark, run)

    # -- measured assertions (scale-independent) ------------------------
    for key, r in results.items():
        assert r["ks_converged"], key
        assert r["keystone"] < r["vw"], key
    # The adaptive choice switches with the input shape.
    choices = {r["choice"] for r in results.values()}
    assert len(choices) > 1

    # -- paper-scale modeled comparison ---------------------------------
    res = r3_4xlarge(16)
    lines.append("")
    lines.append("modeled at paper scale (16 x r3.4xlarge, minutes):")
    lines.append(fmt_row(["config", "keystone", "vw", "systemml",
                          "chosen"], [18, 10, 10, 10, 22]))
    modeled = {}
    for label, stats in [
        ("amazon-16k", DataStats(n=65_000_000, d=16_384, k=2,
                                 sparsity=0.002)),
        ("timit-16k", DataStats(n=2_251_569, d=16_384, k=2, sparsity=1.0)),
        ("timit-65k", DataStats(n=2_251_569, d=65_536, k=2, sparsity=1.0)),
    ]:
        t_ks, choice = _keystone_modeled(stats, res)
        t_vw = _vw_modeled(stats, res)
        t_sy = _systemml_modeled(stats, res)
        modeled[label] = (t_ks, t_vw, t_sy)
        lines.append(fmt_row(
            [label, f"{t_ks / 60:.1f}", f"{t_vw / 60:.1f}",
             f"{t_sy / 60:.1f}", choice], [18, 10, 10, 10, 22]))
    report("fig8_vs_systems", lines)

    for label, (t_ks, t_vw, t_sy) in modeled.items():
        assert t_ks < t_vw, label
        assert t_ks < t_sy, label
    # Sparse data: order-of-magnitude win (SystemML densifies).
    assert modeled["amazon-16k"][2] > 10 * modeled["amazon-16k"][0]
    # Dense 65k features: a few-times win (paper reports 5.5x end-to-end,
    # ~1.5x on the solve alone).
    ratio = modeled["timit-65k"][2] / modeled["timit-65k"][0]
    assert 1.1 < ratio < 50
