"""Ablation: profiling (execution subsampling) overhead and stability (§5.3).

The paper reports optimization overheads are "insignificant except for the
VOC pipeline" (few examples make sampling relatively expensive), and that
linear extrapolation from two samples is accurate enough for resource
management.  This bench measures: profiling time vs sample size, its share
of total fit time, and whether the optimizer's decisions (operator
selections and cache set sizes) are stable across sample sizes.
"""


from repro.dataset import Context
from repro.pipelines import amazon_pipeline, voc_pipeline
from repro.workloads import amazon_reviews, voc_images

from _common import fmt_row, once, report

SAMPLE_SIZES = [(10, 20), (25, 50), (50, 100)]


def test_ablation_profiling_overhead(benchmark):
    widths = [10, 12, 12, 12, 14, 10]
    lines = [fmt_row(["pipeline", "samples", "optimize(s)", "execute(s)",
                      "selections", "cached"], widths)]
    stats = {}

    def run():
        for name, build in {
            "amazon": lambda ctx: amazon_pipeline(
                ctx, amazon_reviews(800, 1, vocab_size=1500, seed=0),
                num_features=600, lbfgs_iters=20),
            "voc": lambda ctx: voc_pipeline(
                ctx, voc_images(50, 1, size=48, num_classes=4, seed=0),
                pca_dims=12, gmm_components=4, sampled_descriptors=100),
        }.items():
            for sizes in SAMPLE_SIZES:
                ctx = Context()
                fitted = build(ctx).fit(level="full", sample_sizes=sizes)
                r = fitted.training_report
                stats[(name, sizes)] = r
                lines.append(fmt_row(
                    [name, str(sizes), f"{r.optimize_seconds:.2f}",
                     f"{r.execute_seconds:.2f}",
                     ",".join(sorted(set(r.selections.values()))),
                     len(r.cache_set)], widths))
        return stats

    once(benchmark, run)
    report("ablation_profiling", lines)

    for name in ("amazon", "voc"):
        reports = [stats[(name, s)] for s in SAMPLE_SIZES]
        # Decisions are stable across sample sizes: same operator choices.
        selections = [tuple(sorted(set(r.selections.values())))
                      for r in reports]
        assert len(set(selections)) == 1, name
        # Profiling grows with sample size but stays bounded relative to
        # the smallest-sample run (no pathological blow-up).
        times = [r.optimize_seconds for r in reports]
        assert times[-1] < 30 * (times[0] + 0.01), name
