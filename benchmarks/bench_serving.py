"""Online serving benchmark: compiled plans + micro-batching + cache.

The ROADMAP's north star is a system that "serves heavy traffic"; this
bench measures the serving subsystem against the pre-serving hot path
(:func:`repro.core.backends.base.recursive_apply_item` — a fresh
recursive graph walk per request) on production-shaped load.

Two experiments:

- ``test_serving_throughput_open_loop`` — an open-loop load generator
  (submit everything, then gather) drives two vector workloads through
  four configurations: naive per-item apply, compiled per-item apply,
  micro-batched serving on an all-unique stream, and the full stack
  (micro-batching + cost-model serving cache) on a Zipf-repeat stream —
  the catalog-with-hot-items distribution real traffic has.  The full
  stack must sustain >= 5x the naive single-request throughput on both
  workloads; predictions are byte-identical (the classification heads
  served here are covered item-by-item by ``tests/test_serving.py``).
- ``test_serving_closed_loop_latency`` — a closed-loop generator
  (concurrent clients, one outstanding request each) reports the latency
  percentiles and cache hit rate under concurrency.
- ``test_serving_replica_drifting_zipf`` — the multi-process replica
  tier vs the single-process server on open-loop Zipf load whose hot set
  *drifts* over a 2M-uid key space; gates the replica/single throughput
  ratio and p99 parity (multi-core runners) and asserts byte identity on
  every replica path.
- ``test_serving_goodput_under_overload`` — paced open-loop traffic at
  ~3x measured capacity, 30% HIGH / 70% LOW priority with a LOW-tier
  shed watermark; gates HIGH-priority goodput (shed-before-overload).
- ``test_serving_cross_version_cache`` — two registered versions sharing
  a featurization prefix; measures the content-addressed cache's
  cross-version hit rate (the new version's first pass over traffic the
  old version already served), recorded and gated as
  ``serving_cross_version.cross_version_hit_rate``.

Set ``REPRO_BENCH_FAST=1`` to shrink the workloads for CI smoke runs.
"""

import gc
import os
import threading
import time

import numpy as np

from repro.core.backends import recursive_apply_item
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier, StandardScaler
from repro.serving import HIGH, LOW, ModelServer, ServerOverloadedError
from repro.workloads import timit_frames, youtube8m

from _common import fmt_row, once, record_result, report

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

NUM_REQUESTS = 400 if FAST else 1200
CATALOG = 60 if FAST else 100  # distinct items behind the Zipf stream
MAX_BATCH = 32 if FAST else 64
MAX_DELAY_MS = 5.0
CACHE_BUDGET = 256e6
SPEEDUP_FLOOR = 5.0

WORKLOADS = {
    # Feature widths keep the projection matrix out of cache even in
    # FAST mode: the naive per-request GEMV stays memory-bound, which is
    # exactly the cost batching and the serving cache amortize.
    "timit": dict(num_train=200 if FAST else 500,
                  dim=256 if FAST else 440,
                  classes=6 if FAST else 12,
                  features=2048),
    "youtube8m": dict(num_train=200 if FAST else 400,
                      dim=512 if FAST else 1024,
                      classes=8 if FAST else 16,
                      features=2048 if FAST else 1024),
}


def _fit(name):
    cfg = WORKLOADS[name]
    if name == "timit":
        wl = timit_frames(cfg["num_train"], CATALOG, dim=cfg["dim"],
                          num_classes=cfg["classes"], seed=0)
    else:
        wl = youtube8m(cfg["num_train"], CATALOG, dim=cfg["dim"],
                       num_classes=cfg["classes"], seed=0)
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    pipe = (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(CosineRandomFeatures(cfg["features"], seed=1), data)
            .and_then(LinearSolver(lbfgs_iters=20), data, labels)
            .and_then(MaxClassifier()))
    return pipe.fit(level="none"), wl.test_items


def _zipf_stream(catalog_items, n, seed=0):
    """Zipf-distributed request stream over a finite catalog."""
    ranks = np.arange(1, len(catalog_items) + 1, dtype=np.float64)
    probs = ranks ** -1.1
    probs /= probs.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(catalog_items), size=n, p=probs)
    return [catalog_items[i] for i in picks]


def _timed_rps(fn, n):
    # The FAST-mode windows are a few milliseconds; a gen-2 GC cycle
    # landing inside one (quasi-deterministic: it depends on allocation
    # counts of everything imported before) skews a single-core run by
    # 5-10x.  Collect up front so every phase starts with zero GC debt.
    gc.collect()
    start = time.perf_counter()
    out = fn()
    return out, n / (time.perf_counter() - start)


def test_serving_throughput_open_loop(benchmark):
    """Naive vs compiled vs batched vs batched+cache, two workloads."""
    fitted = {name: _fit(name) for name in WORKLOADS}

    def run():
        results = {}
        for name, (model, catalog) in fitted.items():
            stream = _zipf_stream(catalog, NUM_REQUESTS, seed=1)
            unique = [catalog[i % len(catalog)]
                      for i in range(NUM_REQUESTS)]
            model.apply(stream[0])  # compile + BLAS warmup

            expected, naive_rps = _timed_rps(
                lambda: [recursive_apply_item(model, x) for x in stream],
                NUM_REQUESTS)
            compiled, compiled_rps = _timed_rps(
                lambda: [model.apply(x) for x in stream], NUM_REQUESTS)

            server = ModelServer(max_batch=MAX_BATCH,
                                 max_delay_ms=MAX_DELAY_MS,
                                 max_queue=2 * NUM_REQUESTS)
            with server:
                server.register(name, model)
                batched, batch_rps = _timed_rps(
                    lambda: server.predict_many(name, unique),
                    NUM_REQUESTS)

            cached_server = ModelServer(max_batch=MAX_BATCH,
                                        max_delay_ms=MAX_DELAY_MS,
                                        max_queue=2 * NUM_REQUESTS,
                                        cache_budget_bytes=CACHE_BUDGET,
                                        expected_reuse=NUM_REQUESTS
                                        / CATALOG)
            with cached_server:
                cached_server.register(name, model,
                                       warmup_items=catalog[:8])
                # Prime: one pass over the catalog fills the cache, so
                # the timed stream measures steady-state serving (the
                # regime a long-running server spends its life in).
                cached_server.predict_many(name, list(catalog))
                served, served_rps = _timed_rps(
                    lambda: cached_server.predict_many(name, stream),
                    NUM_REQUESTS)
                stats = cached_server.stats(name).models[f"{name}@v1"]

            assert served == expected, (
                f"{name}: served predictions diverged from naive apply")
            assert compiled == expected
            results[name] = dict(naive=naive_rps, compiled=compiled_rps,
                                 batched=batch_rps, served=served_rps,
                                 stats=stats)
        return results

    results = once(benchmark, run)

    widths = [11, 10, 10, 10, 12, 9, 8]
    lines = [f"open-loop, {NUM_REQUESTS} requests, catalog {CATALOG}, "
             f"max_batch {MAX_BATCH}, zipf(1.1) repeats",
             "batched = unique stream, cache off; batch+cache = zipf "
             "stream, steady state (primed cache)",
             fmt_row(["workload", "naive", "compiled", "batched",
                      "batch+cache", "speedup", "hit"], widths)]
    for name, r in results.items():
        stats = r["stats"]
        lines.append(fmt_row(
            [name, f"{r['naive']:.0f}/s", f"{r['compiled']:.0f}/s",
             f"{r['batched']:.0f}/s", f"{r['served']:.0f}/s",
             f"{r['served'] / r['naive']:.1f}x",
             f"{stats.cache_hit_rate:.2f}"], widths))
        lines.append(
            f"  {name} serving latency ms: p50 {stats.p50_ms:.2f}  "
            f"p95 {stats.p95_ms:.2f}  p99 {stats.p99_ms:.2f}; "
            f"{stats.batches} batches, mean size "
            f"{stats.mean_batch_size:.1f}")
    report("serving_throughput", lines)

    # Performance-trajectory artifact: machine-independent throughput
    # ratios, gated by benchmarks/check_regression.py.
    metrics = {}
    for name, r in results.items():
        metrics[f"speedup_{name}"] = r["served"] / r["naive"]
        metrics[f"batched_speedup_{name}"] = r["batched"] / r["naive"]
    metrics["min_speedup"] = min(r["served"] / r["naive"]
                                 for r in results.values())
    record_result("serving", metrics)

    for name, r in results.items():
        # Micro-batching alone must beat the naive walk...
        assert r["batched"] > r["naive"], name
        # ...and the full serving stack must clear the 5x floor.
        assert r["served"] >= SPEEDUP_FLOOR * r["naive"], (
            f"{name}: {r['served']:.0f}/s < "
            f"{SPEEDUP_FLOOR}x naive {r['naive']:.0f}/s")
        assert r["stats"].cache_hit_rate > 0.3, name


def test_serving_cross_version_cache(benchmark):
    """Content-addressed cross-version reuse: v2 resumes from v1's work.

    Both versions train through the identical featurization prefix
    (StandardScaler -> CosineRandomFeatures) and differ only in the
    solver, so the prefix ops carry equal content keys and one serving
    cache backs both registered versions.  The metric is the hit rate of
    the *new* version's first pass over a catalog only the *old* version
    has served — every hit is an intermediate v2 never computed.
    """
    name = "timit"
    cfg = WORKLOADS[name]
    wl = timit_frames(cfg["num_train"], CATALOG, dim=cfg["dim"],
                      num_classes=cfg["classes"], seed=0)

    def fit(l2_reg):
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(StandardScaler(), data)
                .and_then(CosineRandomFeatures(cfg["features"], seed=1),
                          data)
                .and_then(LinearSolver(lbfgs_iters=20, l2_reg=l2_reg),
                          data, labels)
                .and_then(MaxClassifier()))
        return pipe.fit(level="none")

    v1, v2 = fit(1e-8), fit(1.0)

    def run():
        server = ModelServer(max_batch=MAX_BATCH,
                             max_delay_ms=MAX_DELAY_MS,
                             cache_budget_bytes=CACHE_BUDGET)
        with server:
            # No warmup: every non-input op is cache-marked, so the
            # shared prefix is cacheable in both versions.
            server.register(name, v1, version="v1")
            m2 = server.register(name, v2, version="v2", deploy=True)
            catalog = list(wl.test_items)
            # The old version serves the catalog (writes the prefix)...
            expected_v1 = server.predict_many(name, catalog, version="v1")
            hits_before = m2.cache.hits
            # ...then the new version sees the same traffic cold.
            served = server.predict_many(name, catalog)
            cross_hits = m2.cache.hits - hits_before
        return expected_v1, served, cross_hits, len(catalog)

    expected_v1, served, cross_hits, n = once(benchmark, run)
    assert expected_v1 == [v1.apply(x) for x in wl.test_items]
    assert served == [v2.apply(x) for x in wl.test_items]
    rate = cross_hits / n
    lines = [f"two versions, shared StandardScaler+RandomFeatures prefix, "
             f"catalog {n}",
             f"v2 first-pass cross-version cache hit rate: {rate:.2f} "
             f"({cross_hits} hits)"]
    report("serving_cross_version", lines)
    record_result("serving_cross_version",
                  {"cross_version_hit_rate": rate})
    # Every v2 request must resume from at least the shared prefix.
    assert rate > 0.9, (
        f"cross-version hit rate {rate:.2f}: content-addressed sharing "
        "is not answering the new version's requests")


def test_serving_closed_loop_latency(benchmark):
    """Concurrent closed-loop clients: tail latency + cache behaviour."""
    name = "timit"
    model, catalog = _fit(name)
    clients = 4
    per_client = 75 if FAST else 200
    streams = [_zipf_stream(catalog, per_client, seed=10 + c)
               for c in range(clients)]
    expected = {id(item): recursive_apply_item(model, item)
                for stream in streams for item in stream}

    def run():
        server = ModelServer(max_batch=MAX_BATCH,
                             max_delay_ms=MAX_DELAY_MS,
                             cache_budget_bytes=CACHE_BUDGET,
                             expected_reuse=per_client * clients / CATALOG)
        failures = []

        def client(stream):
            for item in stream:
                if server.predict(name, item) != expected[id(item)]:
                    failures.append(item)

        with server:
            server.register(name, model, warmup_items=catalog[:8])
            start = time.perf_counter()
            threads = [threading.Thread(target=client, args=(s,))
                       for s in streams]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            elapsed = time.perf_counter() - start
            assert not any(t.is_alive() for t in threads), "clients hung"
            stats = server.stats(name).models[f"{name}@v1"]
        return failures, stats, elapsed

    failures, stats, elapsed = once(benchmark, run)
    total = clients * per_client

    lines = [f"closed-loop: {clients} clients x {per_client} requests, "
             f"catalog {CATALOG}, zipf(1.1)",
             f"aggregate throughput: {total / elapsed:.0f} req/s",
             f"latency ms: mean {stats.mean_ms:.2f}  p50 {stats.p50_ms:.2f}"
             f"  p95 {stats.p95_ms:.2f}  p99 {stats.p99_ms:.2f}",
             f"cache: hit rate {stats.cache_hit_rate:.2f} "
             f"({stats.cache_hits} hits), {stats.cache_entries} entries, "
             f"{stats.cache_used_bytes} bytes",
             f"batches: {stats.batches}, mean size "
             f"{stats.mean_batch_size:.1f}, max {stats.max_batch_size}"]
    report("serving_closed_loop", lines)

    assert not failures, "served predictions diverged under concurrency"
    assert stats.requests == total
    assert stats.errors == 0
    assert stats.cache_hit_rate > 0.2
    assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms


# ----------------------------------------------------------------------
# Replica tier + SLO policies (PR 9)
# ----------------------------------------------------------------------

USERS = 2_000_000  # uid key space behind the drifting hot set
N_OVERLOAD = 300 if FAST else 800
OVERLOAD_FACTOR = 3.0  # offered load vs measured capacity


def _drifting_zipf_uids(n, users, hot, seed=0):
    """Zipf picks inside a hot window that drifts across ``users`` uids.

    The catalog-with-hot-items distribution of ``_zipf_stream``, made
    adversarial for caches: the hot set slides 8 times over the stream,
    so a server must keep *re-earning* its hits on a key space no cache
    could enumerate — the "millions of users" regime of the ROADMAP.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, hot + 1, dtype=np.float64)
    probs = ranks ** -1.1
    probs /= probs.sum()
    base = int(rng.integers(0, users))
    stride = max(1, hot // 2)  # half the window slides out per step
    step = max(1, n // 8)
    picks = rng.choice(hot, size=n, p=probs)
    return [int((base + (t // step) * stride + picks[t]) % users)
            for t in range(n)]


def _item_for_uid(uid, dim):
    """Deterministic per-user feature vector (content-keyed by uid)."""
    return np.random.default_rng(uid).standard_normal(dim)


def test_serving_replica_drifting_zipf(benchmark):
    """Single-process server vs the 2-replica tier on drifting-Zipf load.

    Open-loop traffic from a 2M-uid key space whose Zipf hot set drifts
    over the stream; both servers run the identical batching/cache
    configuration, the replica server additionally ships batches to two
    persistent worker processes (``serving/replicas.py``).  Records the
    replica/single throughput ratio and the p99 parity
    (single p99 / replica p99), gated in ``baselines.json`` on
    multi-core runners; predictions are spot-checked byte-identical to
    ``fitted.apply``.
    """
    cpus = os.cpu_count() or 1
    name = "timit"
    model, _catalog = _fit(name)
    dim = WORKLOADS[name]["dim"]
    uids = _drifting_zipf_uids(NUM_REQUESTS, USERS, CATALOG, seed=3)
    items = {uid: _item_for_uid(uid, dim) for uid in set(uids)}
    stream = [items[uid] for uid in uids]
    expected_head = [model.apply(x) for x in stream[:32]]

    def serve(server):
        with server:
            server.register(name, model, warmup_items=stream[:8])
            server.predict_many(name, stream[:32])  # path + BLAS warmup
            preds, rps = _timed_rps(
                lambda: server.predict_many(name, stream), NUM_REQUESTS)
            stats = server.stats(name).models[f"{name}@v1"]
        return preds, rps, stats

    def run():
        single = ModelServer(max_batch=MAX_BATCH,
                             max_delay_ms=MAX_DELAY_MS,
                             max_queue=2 * NUM_REQUESTS,
                             cache_budget_bytes=CACHE_BUDGET)
        s_preds, s_rps, s_stats = serve(single)
        replica = ModelServer(max_batch=MAX_BATCH,
                              max_delay_ms=MAX_DELAY_MS,
                              max_queue=2 * NUM_REQUESTS,
                              cache_budget_bytes=CACHE_BUDGET,
                              replicas=2)
        try:
            r_preds, r_rps, r_stats = serve(replica)
        finally:
            replica.close()
        return s_preds, s_rps, s_stats, r_preds, r_rps, r_stats

    s_preds, s_rps, s_stats, r_preds, r_rps, r_stats = once(benchmark, run)

    # Byte-identity on every replica path: replica == single == apply.
    assert r_preds == s_preds, (
        "replica-served predictions diverged from single-process serving")
    assert s_preds[:32] == expected_head, (
        "served predictions diverged from fitted.apply")

    ratio = r_rps / s_rps
    parity = s_stats.p99_ms / max(r_stats.p99_ms, 1e-9)
    widths = [10, 10, 9, 9, 6]
    lines = [f"open-loop drifting zipf: {NUM_REQUESTS} requests, "
             f"{len(items)} distinct uids of {USERS}, hot set {CATALOG}, "
             f"{cpus} cpu(s)",
             fmt_row(["tier", "rps", "p50ms", "p99ms", "hit"], widths),
             fmt_row(["single", f"{s_rps:.0f}", f"{s_stats.p50_ms:.2f}",
                      f"{s_stats.p99_ms:.2f}",
                      f"{s_stats.cache_hit_rate:.2f}"], widths),
             fmt_row(["replica2", f"{r_rps:.0f}", f"{r_stats.p50_ms:.2f}",
                      f"{r_stats.p99_ms:.2f}",
                      f"{r_stats.cache_hit_rate:.2f}"], widths),
             f"replica/single throughput {ratio:.2f}x, "
             f"p99 parity {parity:.2f} "
             f"({r_stats.replica_batches} replica batches)"]
    report("serving_replicas", lines)

    metrics = {"single_rps": s_rps, "replica_rps": r_rps,
               "single_p99_ms": s_stats.p99_ms,
               "replica_p99_ms": r_stats.p99_ms,
               "replica_batches": r_stats.replica_batches,
               "cpus": cpus}
    if cpus >= 2:
        # The acceptance bar: the replica tier beats one process on
        # throughput without giving up the tail (gated ratios; a 1-CPU
        # machine cannot scale serving compute, so it only records the
        # ungated absolutes above).
        metrics["replica_throughput_ratio"] = ratio
        metrics["p99_parity"] = parity
        assert ratio > 1.0, (
            f"2 replicas did not beat single-process serving: "
            f"{r_rps:.0f}/s vs {s_rps:.0f}/s")
    record_result("serving_replicas", metrics)
    assert r_stats.replicas == 2
    assert r_stats.replica_batches >= 1
    assert r_stats.errors == 0


def test_serving_goodput_under_overload(benchmark):
    """Priority shedding under ~3x-capacity open-loop overload.

    Measures single-server capacity first, then offers a paced stream at
    ``OVERLOAD_FACTOR``x that rate, 30% HIGH / 70% LOW priority, with
    the LOW tier shedding at 12.5% queue depth.  The gated metric is
    HIGH-priority goodput (completed / offered): shedding must degrade
    the low tier *before* the high tier sees ``ServerOverloadedError``.
    """
    name = "timit"
    model, catalog = _fit(name)
    stream = _zipf_stream(catalog, N_OVERLOAD, seed=7)
    model.apply(stream[0])
    expected_head = [model.apply(x) for x in stream[:8]]

    def run():
        cap_server = ModelServer(max_batch=MAX_BATCH,
                                 max_delay_ms=MAX_DELAY_MS,
                                 max_queue=2 * N_OVERLOAD)
        with cap_server:
            cap_server.register(name, model)
            cap_server.predict_many(name, stream[:32])
            _, capacity = _timed_rps(
                lambda: cap_server.predict_many(name, stream), N_OVERLOAD)

        server = ModelServer(max_batch=MAX_BATCH,
                             max_delay_ms=MAX_DELAY_MS,
                             max_queue=8 * MAX_BATCH,
                             shed_watermarks={HIGH: 1.0, LOW: 0.125})
        rng = np.random.default_rng(11)
        priorities = [HIGH if rng.random() < 0.3 else LOW
                      for _ in range(N_OVERLOAD)]
        offered = {HIGH: 0, LOW: 0}
        shed = {HIGH: 0, LOW: 0}
        futures = []
        interarrival = 1.0 / (OVERLOAD_FACTOR * capacity)
        with server:
            server.register(name, model)
            server.predict_many(name, stream[:8])
            start = time.perf_counter()
            for i, (item, pr) in enumerate(zip(stream, priorities)):
                target = start + i * interarrival
                now = time.perf_counter()
                if target > now:
                    time.sleep(target - now)
                offered[pr] += 1
                try:
                    futures.append(
                        (pr, item, server.submit(name, item, priority=pr)))
                except ServerOverloadedError:
                    shed[pr] += 1
            completed = {HIGH: 0, LOW: 0}
            head_checked = 0
            for pr, item, fut in futures:
                value = fut.result(timeout=300)
                completed[pr] += 1
                if head_checked < 8 and item is stream[head_checked]:
                    assert value == expected_head[head_checked]
                    head_checked += 1
        return capacity, offered, shed, completed

    capacity, offered, shed, completed = once(benchmark, run)
    high_goodput = completed[HIGH] / max(1, offered[HIGH])
    low_goodput = completed[LOW] / max(1, offered[LOW])

    lines = [f"capacity {capacity:.0f}/s, offered "
             f"{OVERLOAD_FACTOR:.0f}x ({N_OVERLOAD} requests, "
             f"30% HIGH / 70% LOW, LOW sheds at 12.5% of queue)",
             fmt_row(["tier", "offered", "completed", "shed", "goodput"],
                     [8, 9, 10, 7, 8]),
             fmt_row(["HIGH", str(offered[HIGH]), str(completed[HIGH]),
                      str(shed[HIGH]), f"{high_goodput:.2f}"],
                     [8, 9, 10, 7, 8]),
             fmt_row(["LOW", str(offered[LOW]), str(completed[LOW]),
                      str(shed[LOW]), f"{low_goodput:.2f}"],
                     [8, 9, 10, 7, 8])]
    report("serving_goodput", lines)

    record_result("serving_slo", {
        "high_priority_goodput": high_goodput,
        "low_priority_goodput": low_goodput,
        "capacity_rps": capacity,
        "low_shed": shed[LOW],
        "high_shed": shed[HIGH]})

    # Overload actually engaged, and it degraded the tiers in order.
    assert shed[LOW] > 0, "overload never engaged the LOW watermark"
    assert high_goodput >= 0.9, (
        f"HIGH-priority goodput {high_goodput:.2f}: shedding did not "
        "protect the high tier")
    assert high_goodput > low_goodput


# ----------------------------------------------------------------------
# Vectorized kernel backend (PR 10)
# ----------------------------------------------------------------------


def test_vectorized_kernel_throughput(benchmark):
    """Interpreter vs kernel-lowered ``run_batch``, per workload family.

    Both plans compile from the same fitted pipeline; the vectorized one
    went through ``VectorizePass`` (the serving default), which lowers
    kernel-capable op runs into columnar ``KernelStage`` slots executing
    the whole batch as a handful of numpy calls.  Because the kernels
    are batch-invariant, the speedup is free of the historical raw-score
    caveat: batched outputs are asserted byte-identical to
    ``fitted.apply``.  Gates
    ``serving_kernels.vectorized_throughput_ratio`` (the text workload's
    ratio — the sparse featurization chain is where per-item dispatch
    hurts most).
    """
    from repro.nodes.text import (CommonSparseFeatures, LowerCase,
                                  TermFrequency, Tokenizer, unit_weighting)
    from repro.serving import compile_inference_plan
    from repro.workloads import amazon_reviews

    ctx = Context()
    fitted = {}
    wl_a = amazon_reviews(300 if FAST else 600, CATALOG,
                          vocab_size=1000 if FAST else 3000, seed=0)
    data = wl_a.train_data(ctx)
    labels = wl_a.train_label_vectors(ctx)
    fitted["amazon"] = (
        (Pipeline.identity()
         .and_then(LowerCase())
         .and_then(Tokenizer())
         .and_then(TermFrequency(unit_weighting()))
         .and_then(CommonSparseFeatures(512), data)
         .and_then(LinearSolver(lbfgs_iters=20), data, labels))
        .fit(level="none"),
        wl_a.test_items)
    cfg = WORKLOADS["timit"]
    wl_t = timit_frames(cfg["num_train"], CATALOG, dim=cfg["dim"],
                        num_classes=cfg["classes"], seed=0)
    t_data = wl_t.train_data(ctx)
    t_labels = wl_t.train_label_vectors(ctx)
    fitted["timit"] = (
        (Pipeline.identity()
         .and_then(StandardScaler(), t_data)
         .and_then(CosineRandomFeatures(cfg["features"], seed=1), t_data)
         .and_then(LinearSolver(lbfgs_iters=20), t_data, t_labels))
        .fit(level="none"),
        wl_t.test_items)

    def run():
        results = {}
        for name, (model, catalog) in fitted.items():
            stream = _zipf_stream(catalog, NUM_REQUESTS, seed=5)
            interp = compile_inference_plan(model, vectorize=False)
            vector = compile_inference_plan(model, vectorize=True)
            interp.run_batch(stream[:32])  # compile + BLAS warmup
            vector.run_batch(stream[:32])  # kernel-build warmup
            expected, interp_rps = _timed_rps(
                lambda: interp.run_batch(stream), NUM_REQUESTS)
            got, vector_rps = _timed_rps(
                lambda: vector.run_batch(stream), NUM_REQUESTS)
            # The kernel path is byte-identical to per-item apply; the
            # interpreter's batched path is not (it rides the members'
            # BLAS-batched apply_partition — the historical caveat), so
            # it is only checked to ulp tolerance.
            per_item = [model.apply(x) for x in stream[:64]]
            assert ([(r.dtype, r.shape, r.tobytes()) for r in got[:64]]
                    == [(r.dtype, r.shape, r.tobytes())
                        for r in per_item]), (
                f"{name}: vectorized raw scores diverged from apply")
            np.testing.assert_allclose(
                np.asarray(expected[:64]), np.asarray(per_item),
                rtol=1e-9)
            results[name] = dict(interp=interp_rps, vector=vector_rps,
                                 ops_before=len(interp),
                                 ops_after=len(vector))
        return results

    results = once(benchmark, run)

    widths = [10, 12, 12, 8, 10]
    lines = [f"raw-score (headless) plans, {NUM_REQUESTS} requests, "
             f"catalog {CATALOG}, zipf(1.1) repeats, run_batch",
             fmt_row(["workload", "interpreter", "vectorized", "ratio",
                      "plan ops"], widths)]
    for name, r in results.items():
        lines.append(fmt_row(
            [name, f"{r['interp']:.0f}/s", f"{r['vector']:.0f}/s",
             f"{r['vector'] / r['interp']:.1f}x",
             f"{r['ops_before']}->{r['ops_after']}"], widths))
    report("serving_kernels", lines)

    metrics = {}
    for name, r in results.items():
        metrics[f"ratio_{name}"] = r["vector"] / r["interp"]
    metrics["vectorized_throughput_ratio"] = metrics["ratio_amazon"]
    record_result("serving_kernels", metrics)

    for name, r in results.items():
        assert r["ops_after"] < r["ops_before"], (
            f"{name}: VectorizePass folded nothing")
    # The acceptance bar: >= 2x on the text workload, where the sparse
    # featurization chain pays per-item dispatch on every request.  The
    # dense workload's ratio is recorded ungated: its interpreter
    # baseline already rides one BLAS gemm per batch (the byte-divergent
    # path), so the batch-invariant per-row kernels buy identity there,
    # not throughput.
    assert metrics["vectorized_throughput_ratio"] >= 2.0, (
        f"text kernel ratio {metrics['vectorized_throughput_ratio']:.2f} "
        "< 2.0")
