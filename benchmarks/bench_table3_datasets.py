"""Table 3: dataset characteristics — paper scale vs generated stand-ins.

Prints the paper's row next to the generated workload's measured row so
scaling factors are explicit.  The generated solve-input sparsity must
match the paper's regime (sparse text vs dense vectors/images).
"""


from repro.workloads import (
    PAPER_DATASETS,
    amazon_reviews,
    cifar10_images,
    imagenet_images,
    measured_characteristics,
    timit_frames,
    voc_images,
    youtube8m,
)

from _common import fmt_row, once, report

WIDTHS = [12, 10, 12, 8, 14, 10]


def _generated():
    return {
        "amazon": (amazon_reviews(2000, 500),
                   dict(solve_features=2000, solve_density=0.02)),
        "timit": (timit_frames(2000, 500, dim=440),
                  dict(solve_features=2048, solve_density=1.0)),
        "imagenet": (imagenet_images(200, 80),
                     dict(solve_features=2 * 2 * 16 * 12,
                          solve_density=1.0)),
        "voc": (voc_images(120, 60),
                dict(solve_features=2 * 8 * 32, solve_density=1.0)),
        "cifar10": (cifar10_images(300, 100),
                    dict(solve_features=2 * 2 * 2 * 32, solve_density=1.0)),
        "youtube8m": (youtube8m(2000, 500),
                      dict(solve_features=1024, solve_density=1.0)),
    }


def test_table3_dataset_characteristics(benchmark):
    lines = [fmt_row(["dataset", "which", "num_train", "classes",
                      "solve_feats", "density"], WIDTHS)]

    rows = once(benchmark, _generated)
    for name, (wl, solve) in rows.items():
        paper = PAPER_DATASETS[name]
        measured = measured_characteristics(wl, **solve)
        lines.append(fmt_row(
            [name, "paper", paper.num_train, paper.classes,
             paper.solve_features, f"{paper.solve_density:g}"], WIDTHS))
        lines.append(fmt_row(
            [name, "generated", measured.num_train, measured.classes,
             measured.solve_features, f"{measured.solve_density:.3f}"],
            WIDTHS))
        # Regime checks: sparse stays sparse, dense stays dense.
        if paper.solve_density < 0.5:
            assert measured.solve_density < 0.5
        else:
            assert measured.solve_density > 0.5
    report("table3_datasets", lines)
