"""Gate CI on the benchmark performance trajectory.

Reads every ``benchmarks/results/BENCH_<name>.json`` the fast-mode bench
steps produced, flattens the latest run of each into ``<bench>.<metric>``
values, and compares them against ``benchmarks/baselines.json``.  All
gated metrics are higher-is-better machine-independent ratios (speedups,
throughput multiples); a metric more than ``tolerance`` (default 30%)
below its committed baseline fails the job.

Metrics missing from the results are skipped with a warning by default —
a 1-CPU runner legitimately cannot measure multi-process speedup — and
fail when ``--strict`` (or ``REGRESSION_STRICT=1``) is set, which CI uses
so the gate cannot silently rot.

Run locally after the fast-mode benches:

    REPRO_BENCH_FAST=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_serving.py benchmarks/bench_fig12_scalability.py
    python benchmarks/check_regression.py
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")
BASELINES_PATH = os.path.join(HERE, "baselines.json")


def load_latest_metrics(results_dir):
    """Flatten the newest run of every BENCH_*.json into one mapping."""
    metrics = {}
    if not os.path.isdir(results_dir):
        return metrics
    for filename in sorted(os.listdir(results_dir)):
        if not (filename.startswith("BENCH_") and filename.endswith(".json")):
            continue
        with open(os.path.join(results_dir, filename)) as f:
            doc = json.load(f)
        runs = doc.get("runs") or []
        if not runs:
            continue
        for key, value in runs[-1].get("metrics", {}).items():
            metrics[f"{doc['name']}.{key}"] = float(value)
    return metrics


def check(baselines, measured, strict):
    """Compare measured metrics to baselines; returns a list of failures."""
    tolerance = float(baselines.get("tolerance", 0.30))
    failures = []
    for key, spec in sorted(baselines["metrics"].items()):
        baseline = float(spec["baseline"])
        floor = baseline * (1.0 - tolerance)
        if key not in measured:
            message = f"MISSING  {key}: no measurement (baseline {baseline:g})"
            if strict:
                failures.append(message)
            else:
                print(f"  [skip] {message}")
            continue
        value = measured[key]
        status = "ok" if value >= floor else "REGRESSED"
        print(
            f"  [{status:>9}] {key}: {value:.3f} "
            f"(baseline {baseline:g}, floor {floor:.3f})"
        )
        if value < floor:
            failures.append(
                f"REGRESSED {key}: {value:.3f} < floor {floor:.3f} "
                f"(baseline {baseline:g}, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict",
        action="store_true",
        default=os.environ.get("REGRESSION_STRICT", "") not in ("", "0"),
        help="fail when a gated metric was not measured at all",
    )
    parser.add_argument("--results-dir", default=RESULTS_DIR)
    parser.add_argument("--baselines", default=BASELINES_PATH)
    args = parser.parse_args(argv)

    with open(args.baselines) as f:
        baselines = json.load(f)
    measured = load_latest_metrics(args.results_dir)
    print(
        f"regression check: {len(measured)} measured metric(s), "
        f"{len(baselines['metrics'])} gated"
    )
    failures = check(baselines, measured, args.strict)
    if failures:
        print("\nperformance regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("performance regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
