"""Incremental training: warm retrains and deduplicated sweeps.

Two headline ratios for the PR 6 incremental engine, both gated by
``benchmarks/baselines.json``:

- ``warm_retrain.reused_op_fraction`` — after a single solver
  hyperparameter change, the fraction of the Amazon pipeline's
  estimators spliced from the FitStore instead of re-fit (deterministic:
  the featurizer reuses, the solver re-fits -> 0.5).
- ``sweep_dedup.speedup_vs_independent`` — wall-clock speedup of one
  union fit over a 6-configuration regularization grid vs fitting every
  configuration independently, on the featurization-dominated text
  pipeline.

Byte-identity to independent cold ``LocalBackend`` fits is asserted for
both paths — the speedups must come from not repeating work, never from
changing results.

Set ``REPRO_BENCH_FAST=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.dataset import Context
from repro.incremental import FitStore, SweepPlanner
from repro.pipelines import amazon_pipeline
from repro.workloads import amazon_reviews

from _common import fmt_row, once, record_result, report

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

NUM_TRAIN = 1200 if FAST else 4000
NUM_TEST = 100 if FAST else 400
VOCAB = 1500 if FAST else 4000
NUM_FEATURES = 400 if FAST else 1200
L2_GRID = (1e-8, 1e-6, 1e-4, 1e-2, 1e-1, 1.0)
SWEEP_SPEEDUP_FLOOR = 1.5


def _workload():
    return amazon_reviews(NUM_TRAIN, NUM_TEST, vocab_size=VOCAB, seed=0)


def _predictions(fitted, ctx, wl):
    return np.asarray(fitted.apply_dataset(wl.test_data(ctx)).collect())


def test_warm_retrain(benchmark):
    wl = _workload()
    ctx = Context()

    def build(l2_reg):
        return amazon_pipeline(ctx, wl, num_features=NUM_FEATURES,
                               l2_reg=l2_reg)

    def run():
        store = FitStore()
        start = time.perf_counter()
        build(1e-8).fit(fit_store=store)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = build(1e-2).fit(fit_store=store)
        warm_s = time.perf_counter() - start
        return store, warm, cold_s, warm_s

    store, warm, cold_s, warm_s = once(benchmark, run)
    rep = warm.training_report
    fraction = rep.reused_op_fraction

    # Byte-identity: the warm retrain must match a cold fit of the
    # changed pipeline exactly.
    reference = amazon_pipeline(ctx, wl, num_features=NUM_FEATURES,
                                l2_reg=1e-2).fit()
    assert np.array_equal(_predictions(warm, ctx, wl),
                          _predictions(reference, ctx, wl))

    report("incremental_warm_retrain", [
        fmt_row(["phase", "fit(s)", "reused", "refit"], [12, 8, 24, 24]),
        fmt_row(["cold", f"{cold_s:.2f}", "-", "-"], [12, 8, 24, 24]),
        fmt_row(["warm", f"{warm_s:.2f}", ",".join(rep.reused_ops),
                 ",".join(rep.refit_ops)], [12, 8, 24, 24]),
        f"reused_op_fraction: {fraction:.2f}  store entries: {len(store)}",
    ])

    # One hyperparameter changed: the featurizer splices, the solver
    # re-fits.
    assert rep.reused_ops == ["CommonSparseFeatures"]
    assert rep.refit_ops == ["LinearSolver"]
    record_result("warm_retrain", {"reused_op_fraction": fraction})


def test_sweep_dedup(benchmark):
    wl = _workload()
    ctx = Context()

    def build(params):
        return amazon_pipeline(ctx, wl, num_features=NUM_FEATURES,
                               l2_reg=params["l2"])

    configs = [{"l2": l2} for l2 in L2_GRID]

    def run():
        start = time.perf_counter()
        independents = [build(c).fit() for c in configs]
        independent_s = time.perf_counter() - start
        start = time.perf_counter()
        trials, sweep_rep = SweepPlanner(build, configs).run()
        union_s = time.perf_counter() - start
        return independents, independent_s, trials, sweep_rep, union_s

    independents, independent_s, trials, sweep_rep, union_s = once(
        benchmark, run)
    speedup = independent_s / union_s

    # Byte-identity per trial: dedup must not change any result.
    for cold, trial in zip(independents, trials):
        assert np.array_equal(_predictions(trial, ctx, wl),
                              _predictions(cold, ctx, wl))

    report("incremental_sweep_dedup", [
        fmt_row(["configs", "total ops", "union ops", "dedup"],
                [8, 10, 10, 7]),
        fmt_row([len(configs), sweep_rep.total_ops, sweep_rep.unique_ops,
                 f"{sweep_rep.dedup_ratio:.1f}x"], [8, 10, 10, 7]),
        f"independent fits: {independent_s:.2f}s  union fit: "
        f"{union_s:.2f}s  speedup: {speedup:.2f}x",
    ])

    assert speedup >= SWEEP_SPEEDUP_FLOOR, (
        f"sweep dedup speedup {speedup:.2f}x below floor "
        f"{SWEEP_SPEEDUP_FLOOR}x")
    record_result("sweep_dedup", {"speedup_vs_independent": speedup})
    record_result("incremental", {
        "sweep_speedup": speedup,
        "sweep_dedup_ratio": sweep_rep.dedup_ratio,
    })
