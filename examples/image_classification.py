"""Image classification: the paper's Figure-5 VOC Fisher-vector pipeline.

GrayScale -> SIFT -> [ColumnSampler -> PCA] -> [ColumnSampler -> GMM] ->
FisherVector -> power + L2 normalization -> LinearSolver.  The PCA and GMM
estimators train on *sampled* descriptor branches while the main flow keeps
every descriptor — the DAG whose shared SIFT prefix the materialization
optimizer caches (paper Figure 11).

Run:  python examples/image_classification.py
"""

from repro import Context
from repro.evaluation import accuracy, mean_average_precision
from repro.nodes.numeric import MaxClassifier
from repro.pipelines import voc_pipeline
from repro.workloads import voc_images


def main():
    ctx = Context()
    workload = voc_images(num_train=120, num_test=60, size=48,
                          num_classes=5, noise=0.3, seed=0)
    pipeline = voc_pipeline(ctx, workload, pca_dims=16, gmm_components=4,
                            sampled_descriptors=150)

    print("Fitting the VOC Fisher-vector pipeline...")
    model = pipeline.fit(sample_sizes=(10, 20))
    report = model.training_report

    print(f"  physical operators: {report.selections}")
    print(f"  cached outputs    : {report.cache_set_labels}")
    stages = report.stage_seconds()
    for stage, secs in stages.items():
        print(f"  {stage:<10}: {secs:.2f}s")

    scores = model.apply_dataset(workload.test_data(ctx)).collect()
    predictions = [MaxClassifier().apply(s) for s in scores]
    acc = accuracy(predictions, workload.test_labels)
    mean_ap = mean_average_precision(scores, workload.test_labels,
                                     workload.num_classes)
    print(f"  accuracy : {acc:.3f} "
          f"(chance = {1 / workload.num_classes:.2f})")
    print(f"  mAP      : {mean_ap:.3f}")
    # Gate the smoke run: learnable signal must survive the Fisher stack.
    assert acc >= 0.6, f"accuracy {acc:.3f} collapsed (chance is 0.2)"
    assert mean_ap >= 0.6, f"mAP {mean_ap:.3f} collapsed"


if __name__ == "__main__":
    main()
