"""Hyperparameter tuning over whole pipelines (paper §7 future work).

Grid-searches the TIMIT-style kernel-approximation pipeline over the
number of random features and the kernel bandwidth, fitting one optimized
pipeline per configuration and scoring on held-out data.  Each trial
records which physical solver the optimizer chose, so the search results
explain themselves.

Run:  python examples/hyperparameter_tuning.py
"""

from repro.core.pipeline import Pipeline
from repro.core.tuning import GridSearch
from repro.dataset import Context
from repro.evaluation import accuracy
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier
from repro.workloads import timit_frames


def main():
    workload = timit_frames(num_train=800, num_test=200, dim=64,
                            num_classes=8, seed=0)

    def builder(params):
        ctx = Context()
        data = workload.train_data(ctx)
        labels = workload.train_label_vectors(ctx)
        return (Pipeline.identity()
                .and_then(CosineRandomFeatures(params["num_features"],
                                               gamma=params["gamma"],
                                               seed=0), data)
                .and_then(LinearSolver(), data, labels))

    def scorer(fitted):
        ctx = Context()
        scores = fitted.apply_dataset(workload.test_data(ctx)).collect()
        preds = [MaxClassifier().apply(s) for s in scores]
        return accuracy(preds, workload.test_labels)

    search = GridSearch(
        builder, scorer,
        grid={"num_features": [32, 128, 512],
              "gamma": [0.005, 0.02, 0.1]},
        fit_kwargs={"sample_sizes": (40, 80)})

    print(f"{'num_features':>12} {'gamma':>7} {'accuracy':>9} "
          f"{'fit(s)':>7}  solver")
    result = search.run()
    for trial in result.ranked():
        solver = ",".join(sorted(set(trial.selections.values()))) or "-"
        print(f"{trial.params['num_features']:>12} "
              f"{trial.params['gamma']:>7g} {trial.score:>9.3f} "
              f"{trial.fit_seconds:>7.2f}  {solver}")
    best = result.best
    print(f"\nbest: {best.params} -> accuracy {best.score:.3f} "
          f"(chance = {1 / workload.num_classes:.3f})")
    # Gate the smoke run: the search must find a configuration that
    # genuinely beats chance.
    assert best.score > 1.5 / workload.num_classes, (
        f"best accuracy {best.score:.3f} is not meaningfully above "
        f"chance {1 / workload.num_classes:.3f}")


if __name__ == "__main__":
    main()
