"""Hyperparameter tuning over whole pipelines (paper §7 future work).

Grid-searches the TIMIT-style kernel-approximation pipeline over the
number of random features and the kernel bandwidth, fitting one optimized
pipeline per configuration and scoring on held-out data.  Each trial
records which physical solver the optimizer chose, so the search results
explain themselves.

The second half demonstrates *deduplicated* search
(``GridSearch(incremental=True)``): the whole grid merges into one union
program keyed by content, the shared featurization prefix fits once, and
only the solvers the grid actually distinguishes fit per trial — with
scores identical to independent fits and a measured speedup.

Run:  python examples/hyperparameter_tuning.py
"""

import time

from repro.core.pipeline import Pipeline
from repro.core.tuning import GridSearch
from repro.dataset import Context
from repro.evaluation import accuracy
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier
from repro.pipelines.amazon import amazon_pipeline
from repro.workloads import amazon_reviews, timit_frames


def main():
    workload = timit_frames(num_train=800, num_test=200, dim=64,
                            num_classes=8, seed=0)

    def builder(params):
        ctx = Context()
        data = workload.train_data(ctx)
        labels = workload.train_label_vectors(ctx)
        return (Pipeline.identity()
                .and_then(CosineRandomFeatures(params["num_features"],
                                               gamma=params["gamma"],
                                               seed=0), data)
                .and_then(LinearSolver(), data, labels))

    def scorer(fitted):
        ctx = Context()
        scores = fitted.apply_dataset(workload.test_data(ctx)).collect()
        preds = [MaxClassifier().apply(s) for s in scores]
        return accuracy(preds, workload.test_labels)

    search = GridSearch(
        builder, scorer,
        grid={"num_features": [32, 128, 512],
              "gamma": [0.005, 0.02, 0.1]},
        fit_kwargs={"sample_sizes": (40, 80)})

    print(f"{'num_features':>12} {'gamma':>7} {'accuracy':>9} "
          f"{'fit(s)':>7}  solver")
    result = search.run()
    for trial in result.ranked():
        solver = ",".join(sorted(set(trial.selections.values()))) or "-"
        print(f"{trial.params['num_features']:>12} "
              f"{trial.params['gamma']:>7g} {trial.score:>9.3f} "
              f"{trial.fit_seconds:>7.2f}  {solver}")
    best = result.best
    print(f"\nbest: {best.params} -> accuracy {best.score:.3f} "
          f"(chance = {1 / workload.num_classes:.3f})")
    # Gate the smoke run: the search must find a configuration that
    # genuinely beats chance.
    assert best.score > 1.5 / workload.num_classes, (
        f"best accuracy {best.score:.3f} is not meaningfully above "
        f"chance {1 / workload.num_classes:.3f}")

    incremental_sweep()


def incremental_sweep():
    """Dedupe a solver-hyperparameter sweep into one union fit.

    Uses the Amazon text pipeline, where n-gram featurization dominates
    each trial — the regime where executing the shared prefix once
    instead of once per configuration visibly pays.  (A solver-dominated
    sweep, e.g. regularization over wide random features, shares almost
    no per-trial cost and dedups without a wall-clock win.)
    """
    workload = amazon_reviews(num_train=1200, num_test=150,
                              vocab_size=1800, seed=0)
    ctx = Context()

    # amazon_pipeline binds the workload's datasets internally; sharing
    # happens by *content* hashing, so each configuration's rebuild of
    # the same training data still keys (and therefore merges) equal.
    def builder(params):
        return amazon_pipeline(ctx, workload, num_features=400,
                               l2_reg=params["l2_reg"])

    def scorer(fitted):
        scores = fitted.apply_dataset(workload.test_data(ctx)).collect()
        preds = [MaxClassifier().apply(s) for s in scores]
        return accuracy(preds, workload.test_labels)

    grid = {"l2_reg": [1e-8, 1e-6, 1e-4, 1e-2, 1e-1, 1.0]}

    start = time.perf_counter()
    plain = GridSearch(builder, scorer, grid).run()
    independent_s = time.perf_counter() - start

    start = time.perf_counter()
    inc = GridSearch(builder, scorer, grid, incremental=True).run()
    incremental_s = time.perf_counter() - start

    report = inc.sweep_report
    speedup = independent_s / incremental_s
    print(f"\nincremental sweep over {len(report.configs)} configs: "
          f"{report.unique_ops} union ops for {report.total_ops} total "
          f"(dedup {report.dedup_ratio:.1f}x)")
    print(f"independent fits {independent_s:.2f}s, union fit "
          f"{incremental_s:.2f}s -> speedup {speedup:.1f}x")
    # Deduplication must not change results...
    assert [t.score for t in inc.trials] == [t.score for t in plain.trials]
    # ...and sharing the featurization prefix must actually pay.
    assert speedup > 1.0, (
        f"union fit was not faster than independent fits "
        f"({incremental_s:.2f}s vs {independent_s:.2f}s)")


if __name__ == "__main__":
    main()
