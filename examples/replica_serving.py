"""Replica-scale serving: replicas, SLO batching, shedding, asyncio.

Serves a TIMIT-style vector classifier through the full PR-9 stack:

- ``ModelServer(replicas=2)`` ships the compiled OpProgram to two
  persistent replica processes and dispatches micro-batches to the
  least-loaded one — byte-identical to ``fitted.apply``.
- The fleet shares ONE content-addressed serving cache: a repeat pass
  over the same items is answered parent-side, whichever replica
  computed the first pass.
- ``slo_target_p99_ms=`` installs the feedback controller that retunes
  the effective batch/delay from observed latency.
- ``AsyncModelServer`` awaits the same Future-based submit path from a
  coroutine.
- A standalone ``MicroBatcher`` with ``shed_watermarks`` demonstrates
  priority shedding: LOW traffic is refused at its queue watermark
  while NORMAL still queues and nothing hits the hard overload wall.

Run:  PYTHONPATH=src python examples/replica_serving.py
"""

import asyncio
import threading
import time

from repro import Context, Pipeline
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier, StandardScaler
from repro.serving import (
    LOW,
    AsyncModelServer,
    MicroBatcher,
    ModelServer,
    RequestShedError,
)
from repro.workloads import timit_frames


def train_frames_model(wl):
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (
        Pipeline.identity()
        .and_then(StandardScaler(), data)
        .and_then(CosineRandomFeatures(512, seed=1), data)
        .and_then(LinearSolver(), data, labels)
        .and_then(MaxClassifier())
        .fit(sample_sizes=(50, 100))
    )


def demo_replica_tier(fitted, items, expected):
    server = ModelServer(
        max_batch=16,
        max_delay_ms=2.0,
        replicas=2,
        slo_target_p99_ms=50.0,
        cache_budget_bytes=64e6,
    )
    with server:
        model = server.register("frames", fitted, warmup_items=items[:8])
        print(f"registered on {server.replicas} replicas")

        served = server.predict_many("frames", items)
        assert served == expected, "replica-served predictions drifted"
        fleet = model.replica_set
        assert fleet is not None and fleet.batches > 0, (
            "replica fleet served no batches"
        )
        print(
            f"pass 1: {len(served)} predictions over {fleet.batches} "
            f"replica batches, restarts={fleet.restarts}"
        )

        # Fleet-wide shared cache: the repeat pass is answered from the
        # parent-side content-addressed cache, whichever replica
        # computed the originals.
        hits_before = model.cache.hits
        again = server.predict_many("frames", items)
        assert again == expected
        repeat_hits = model.cache.hits - hits_before
        assert repeat_hits >= len(items), (
            f"expected fleet-wide cache hits, got {repeat_hits}"
        )
        print(f"pass 2: {repeat_hits} cache hits (shared across replicas)")

        stats = server.stats("frames").models["frames@v1"]
        assert stats.slo_target_p99_ms == 50.0, "SLO controller not wired"
        assert stats.effective_batch >= 1
        print(
            f"SLO controller: effective_batch={stats.effective_batch:.0f} "
            f"effective_delay={stats.effective_delay_ms:.2f}ms "
            f"adjustments={stats.slo_adjustments}"
        )

        # The asyncio front-end awaits the same submit path.
        aserver = AsyncModelServer(server=server)

        async def serve_async():
            return await aserver.predict_many("frames", items[:32])

        got = asyncio.run(serve_async())
        assert got == expected[:32], "async front-end drifted"
        print(f"async front-end served {len(got)} awaited predictions")


def demo_priority_shedding():
    # A runner held open by an event keeps the queue pressed so the
    # watermark behaviour is deterministic.
    gate = threading.Event()

    def slow_runner(batch):
        gate.wait(10.0)
        return batch

    batcher = MicroBatcher(
        slow_runner,
        max_batch=1,
        max_delay_ms=0.5,
        max_queue=8,
        shed_watermarks={LOW: 0.5},
    )
    batcher.start()
    try:
        blocker = batcher.submit("warm")
        while batcher.queue_depth > 0:  # first flush now blocked in runner
            time.sleep(0.001)
        for i in range(4):  # NORMAL fills the queue to the LOW watermark
            batcher.submit(f"normal-{i}")
        try:
            batcher.submit("low traffic", priority=LOW)
            raise AssertionError("LOW request above its watermark must shed")
        except RequestShedError:
            pass
        assert batcher.shed_requests == 1
        assert batcher.queue_depth < batcher.max_queue, (
            "shedding must happen before the hard overload wall"
        )
        print(
            f"LOW shed at queue depth {batcher.queue_depth}/"
            f"{batcher.max_queue}; NORMAL still queued"
        )
    finally:
        gate.set()
        batcher.stop()  # flush-on-shutdown drains the queued NORMALs
    assert blocker.result(5.0) == "warm"


def main():
    frames = timit_frames(num_train=600, num_test=200, dim=256, num_classes=8, seed=0)
    print("training model...")
    fitted = train_frames_model(frames)
    items = frames.test_items
    expected = [fitted.apply(x) for x in items]

    demo_replica_tier(fitted, items, expected)
    demo_priority_shedding()
    print("ok: replicas byte-identical, cache shared, LOW shed first")


if __name__ == "__main__":
    main()
