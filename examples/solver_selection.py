"""Operator-level optimization in action (paper Section 3).

Shows the cost-based optimizer choosing different physical linear solvers
and PCA implementations as the input statistics change: sparse text
features -> L-BFGS; small dense -> exact QR; wide dense multiclass ->
block solver; and the exact solver turning *infeasible* when the design
matrix outgrows node memory.

Run:  python examples/solver_selection.py
"""

from repro.cluster.resources import r3_4xlarge
from repro.core.stats import DataStats
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.pca import PCAEstimator


def show_choice(title, optimizable, stats, resources, expect=None):
    print(f"\n{title}")
    print(f"  stats: n={stats.n:,} d={stats.d:,} k={stats.k} "
          f"sparsity={stats.sparsity:g}")
    for name, cost in optimizable.cost_table(stats, resources):
        marker = ""
        if cost == float("inf"):
            marker = "   (infeasible)"
        print(f"    {name:<18} {cost:12.1f} s{marker}")
    chosen = optimizable.optimize(stats, resources)
    print(f"  -> chosen: {type(chosen).__name__}")
    # Gate the smoke run: the selections the docstring promises.
    if expect is not None:
        assert type(chosen).__name__ == expect, (
            f"expected {expect}, optimizer chose {type(chosen).__name__}")
    return chosen


def main():
    cluster = r3_4xlarge(16)
    solver = LinearSolver()

    show_choice("Amazon-like: 65M sparse text documents, binary",
                solver,
                DataStats(n=65_000_000, d=100_000, k=2, sparsity=0.001),
                cluster, expect="LBFGSSolver")
    show_choice("Small dense problem: exact solve is cheap",
                solver,
                DataStats(n=2_000_000, d=1024, k=2, sparsity=1.0),
                cluster)
    show_choice("TIMIT-like: 65k dense features, 147 classes",
                solver,
                DataStats(n=2_251_569, d=65_536, k=147, sparsity=1.0),
                cluster, expect="BlockCoordinateSolver")

    pca = PCAEstimator(k=16)
    show_choice("PCA: wide data, small k (approximate wins)",
                pca, DataStats(n=10_000, d=4096, k=1), cluster)
    show_choice("PCA: huge n (distributed wins)",
                pca, DataStats(n=100_000_000, d=4096, k=1), cluster,
                expect="DistributedTSVD")


if __name__ == "__main__":
    main()
