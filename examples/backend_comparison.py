"""Execution backends: one plan, four ways to run it.

Optimizes the Figure-2 text classification pipeline once, then trains the
same PhysicalPlan under each shipped ExecutionBackend:

- local      — serial depth-first execution (the reference semantics);
- pipelined  — independent estimator fits overlap on a thread pool;
- sharded    — trains in-process, then prices per-shard stage times on a
               simulated 8-node cluster and sweeps the cluster size
               (the Figure-12 axis) without retraining;
- process    — actually executes shards in worker processes: spawn-safe
               shard programs, sufficient-statistic merges for the
               frequency selector, gather-and-fit for the solvers.

All four produce byte-identical predictions — that is the backend
contract (asserted below; this example exits non-zero if it breaks).

Threads vs processes on this workload: tokenization/n-grams/term counting
are pure Python, so the thread pool only overlaps the two solver
branches (the GIL serializes featurization) while the process pool
parallelizes featurization itself and skips re-featurizing for the
iterative solver by materializing worker output.

Run:  python examples/backend_comparison.py
"""

from repro import Context, Optimizer, Pipeline, ShardingPass
from repro.cluster.resources import r3_4xlarge
from repro.core.backends import (
    LocalBackend,
    PipelinedBackend,
    ProcessPoolBackend,
    ShardedBackend,
    plan_scaling_sweep,
    shutdown_worker_pools,
)
from repro.core.optimizer import passes_for_level
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import amazon_reviews

WORKERS = 8
NODES = [8, 16, 32, 64, 128]


def build_plan(wl):
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    # Two solver branches over a shared featurization: the pipelined
    # backend can overlap their fits.
    base = (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(1000), data))
    branch1 = base.and_then(LinearSolver(), data, labels)
    branch2 = base.and_then(LinearSolver(l2_reg=1.0), data, labels)
    pipe = Pipeline.gather([branch1, branch2])

    passes = passes_for_level("full", sample_sizes=(100, 200))
    passes.append(ShardingPass(workers=WORKERS))
    return Optimizer(passes).optimize(pipe, level="full")


def main():
    wl = amazon_reviews(num_train=2000, num_test=200, vocab_size=2000,
                        seed=0)
    test_data = wl.test_data(Context())

    backends = [
        LocalBackend(),
        PipelinedBackend(max_workers=4),
        ShardedBackend(resources=r3_4xlarge(WORKERS),
                       overhead_per_stage=0.02),
        ProcessPoolBackend(workers=2, task_timeout=600.0),
    ]

    reference = None
    sharded_fitted = None
    train_seconds = {}
    print(f"{'backend':<22} {'train(s)':>9} {'identical':>10}")
    for backend in backends:
        plan = build_plan(wl)
        fitted = plan.execute(backend=backend)
        rows = fitted.apply_dataset(test_data, backend=backend).collect()
        key = [tuple(x.tobytes() for x in row) for row in rows]
        if reference is None:
            reference = key
        report = fitted.training_report
        train_seconds[backend.name] = report.execute_seconds
        print(f"{report.backend:<22} {report.execute_seconds:>9.2f} "
              f"{str(key == reference):>10}")
        # The backend contract, enforced: identical bytes or die.
        assert key == reference, (
            f"{report.backend} diverged from the serial reference")
        if isinstance(backend, ShardedBackend):
            sharded_fitted = fitted
            sharded_plan = plan
        if isinstance(backend, ProcessPoolBackend):
            process_report = report

    print("\nThreads vs processes on this numpy-light text workload:")
    print(f"  pipelined (threads) {train_seconds['pipelined']:>7.2f}s — the "
          "GIL serializes tokenization; only solver branches overlap")
    print(f"  process   (2 procs) {train_seconds['process']:>7.2f}s — "
          "featurization itself runs in parallel shards "
          f"(stat-merged: {process_report.process_stat_merged}, "
          f"gathered: {process_report.process_gathered})")
    assert not process_report.process_fallback, \
        process_report.process_fallback

    print("\nThe process fit, summarized (TrainingReport.summary()):")
    for line in process_report.summary().splitlines():
        print(f"  {line}")

    report = sharded_fitted.training_report
    print(f"\nSharded pricing at {report.simulated_workers} workers: "
          f"{report.simulated_seconds:.3f}s simulated "
          f"(measured serial {sum(report.node_seconds.values()):.3f}s)")
    for category, seconds in sorted(report.simulated_breakdown.items()):
        print(f"  {category:<14} {seconds:.3f}s")

    print("\nStrong scaling of the SAME trained plan (no retraining):")
    sweep = plan_scaling_sweep(sharded_fitted, NODES)
    base_total = sum(sweep[NODES[0]].values())
    for w in NODES:
        total = sum(sweep[w].values())
        print(f"  {w:>4} workers: {total:.3f}s  "
              f"({base_total / total:.1f}x)")

    print("\nThe optimizer recorded the sharding decision on the plan:")
    sharding_lines = [line for line in sharded_plan.explain().splitlines()
                      if "Sharding" in line or "sharding" in line]
    assert sharding_lines, "ShardingPass decision missing from explain()"
    for line in sharding_lines:
        print(f"  {line.strip()}")
    shutdown_worker_pools()


if __name__ == "__main__":
    main()
