"""Warm retrains with a content-addressed FitStore (ROADMAP item 4).

The incremental training engine keys every estimator of a training DAG
by *content* — the unfitted operator, the featurization chain above it,
and the bytes of every bound dataset (`repro.core.program.training_keys`)
— and stores fitted state in a byte-budgeted
:class:`~repro.incremental.FitStore` under those keys.  Because a key
digests everything a fit depends on, a store hit is valid by
construction; there is no invalidation protocol, only misses when
anything upstream changed.

This walkthrough shows the three consumers on the Amazon reviews
pipeline:

1. **Warm retrain** — change one solver hyperparameter, refit: the
   featurization estimator splices in fitted from the store
   (``reused_ops``) and only the solver re-fits (``refit_ops``), with
   predictions byte-identical to a cold fit.
2. **Persistence** — :func:`repro.io.save_pipeline` writes the store
   next to the pipeline; a later process reloads it with
   :func:`repro.io.load_fit_store` and retrains warm.
3. **Streaming refit** — append partitions to the training data: a
   shardable estimator merges stored per-partition sufficient
   statistics with statistics of only the new partitions
   (``stat_partitions_reused`` / ``stat_partitions_computed``).

Run:  python examples/incremental_retrain.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import io as rio
from repro.dataset import Context
from repro.incremental import FitStore, diff_pipelines
from repro.nodes.numeric import StandardScaler
from repro.core.pipeline import Pipeline
from repro.pipelines.amazon import amazon_pipeline
from repro.workloads import amazon_reviews


def warm_retrain_and_persist():
    ctx = Context()
    workload = amazon_reviews(num_train=600, num_test=100,
                              vocab_size=800, seed=0)
    test = workload.test_data(ctx)

    def build(l2_reg):
        return amazon_pipeline(ctx, workload, num_features=300,
                               l2_reg=l2_reg)

    # Cold fit: everything re-fits, and the store fills up.
    store = FitStore(budget_bytes=64 << 20)
    cold = build(1e-8).fit(fit_store=store)
    print("cold fit    refit:", cold.training_report.refit_ops)

    # diff_pipelines previews what a retrain after an l2 change could
    # reuse, before paying for any fit.
    diff = diff_pipelines(build(1e-8), build(1e-2))
    print("preview     reusable:", diff.reusable, " stale:", diff.stale)

    # Warm retrain after the hyperparameter change: the featurization
    # estimator rides in from the store, only the solver re-fits.
    warm = build(1e-2).refit(store)
    report = warm.training_report
    print("warm refit  reused:", report.reused_ops,
          " refit:", report.refit_ops,
          f" ({report.reused_op_fraction:.0%} reused)")
    assert report.reused_ops == ["CommonSparseFeatures"]

    # The acceptance bar: byte-identity to a cold fit of the same
    # pipeline, not "close enough".
    reference = build(1e-2).fit()
    assert np.array_equal(
        np.asarray(warm.apply_dataset(test).collect()),
        np.asarray(reference.apply_dataset(test).collect()))
    print("warm refit is byte-identical to a cold fit")

    # Persistence: the store travels next to the saved pipeline, so a
    # later process warm-starts from this one's training.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "amazon.pkl"
        rio.save_pipeline(warm, path, fit_store=store)
        reloaded = rio.load_fit_store(path)
        again = build(1e-2).fit(fit_store=reloaded)
        assert again.training_report.reused_op_fraction == 1.0
        print("after save/load every estimator splices from the store")


def streaming_refit():
    """Append partitions; merge stored stats instead of replaying."""
    ctx = Context()
    vectors = [np.array([float(i), float(3 * i), 1.0]) for i in range(96)]

    def build(n_items, partitions):
        data = ctx.parallelize(vectors[:n_items], partitions)
        return Pipeline.identity().and_then(StandardScaler(), data)

    store = FitStore()
    build(72, 3).fit(fit_store=store)  # 3 partitions of 24 rows

    # One appended partition: the scaler is a ShardableEstimator, so the
    # refit reuses the three stored per-partition statistics and only
    # computes the fourth, then merges in the estimator's own reduction
    # order — no old data is replayed.
    grown = build(96, 4).fit(fit_store=store)
    report = grown.training_report
    print(f"\nstreaming refit: {report.stat_partitions_reused} partition "
          f"stats reused, {report.stat_partitions_computed} computed")
    assert report.stat_partitions_reused == 3
    assert report.stat_partitions_computed == 1

    reference = build(96, 4).fit()
    probe = ctx.parallelize(vectors, 2)
    assert np.array_equal(
        np.asarray(grown.apply_dataset(probe).collect()),
        np.asarray(reference.apply_dataset(probe).collect()))
    print("streaming refit is byte-identical to refitting from scratch")


def main():
    warm_retrain_and_persist()
    streaming_refit()


if __name__ == "__main__":
    main()
