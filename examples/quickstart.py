"""Quickstart: the paper's Figure-2 text classification pipeline.

Builds the Trim -> LowerCase -> Tokenizer -> NGrams -> TermFrequency ->
CommonSparseFeatures -> LinearSolver pipeline over a synthetic review
corpus, fits it with full optimization, and evaluates on held-out data.

Run:  python examples/quickstart.py
"""

from repro import Context
from repro.core.pipeline import Pipeline
from repro.evaluation import accuracy
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.numeric import MaxClassifier
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
    Trim,
)
from repro.workloads import amazon_reviews


def main():
    ctx = Context()
    workload = amazon_reviews(num_train=2000, num_test=500,
                              vocab_size=3000, seed=0)
    data = workload.train_data(ctx)
    labels = workload.train_label_vectors(ctx)

    # The pipeline of Figure 2, chained exactly as in the paper.
    text_classifier = (Pipeline.identity()
                       .and_then(Trim())
                       .and_then(LowerCase())
                       .and_then(Tokenizer())
                       .and_then(NGramsFeaturizer(1, 2))
                       .and_then(TermFrequency(lambda count: 1.0))
                       .and_then(CommonSparseFeatures(1500), data)
                       .and_then(LinearSolver(), data, labels))

    print("Fitting with full optimization (operator selection + CSE + "
          "automatic materialization)...")
    model = text_classifier.fit(sample_sizes=(100, 200))

    # fit() is a shim over the composable pass pipeline; see
    # examples/plan_inspection.py for optimize -> explain -> execute.
    report = model.training_report
    print(f"  optimizer passes: {report.passes}")
    print(f"  solver selected : {list(report.selections.values())}")
    print(f"  CSE merged nodes: {report.cse_nodes_removed}")
    print(f"  cached outputs  : {report.cache_set_labels}")
    print(f"  optimize time   : {report.optimize_seconds:.2f}s")
    print(f"  train time      : {report.execute_seconds:.2f}s")

    scores = model.apply_dataset(workload.test_data(ctx)).collect()
    predictions = [MaxClassifier().apply(s) for s in scores]
    acc = accuracy(predictions, workload.test_labels)
    print(f"  test accuracy   : {acc:.3f} (chance = "
          f"{1 / workload.num_classes:.2f})")
    # Gate the smoke run: the pipeline must actually learn (CI runs this).
    assert acc >= 0.8, f"accuracy {acc:.3f} collapsed (chance is 0.5)"
    assert report.cse_nodes_removed > 0, "CSE found nothing to merge"
    assert report.selections, "operator selection made no choice"

    # Single-item inference with the fitted pipeline.
    print("\nSample predictions:")
    for doc in ["this product is great I love it",
                "terrible waste of money, want a refund"]:
        label = MaxClassifier().apply(model.apply(doc))
        print(f"  {label}  <-  {doc!r}")


if __name__ == "__main__":
    main()
