"""The actor runtime: persistent workers, shard-state reuse, fault recovery.

Trains an iterative k-means text pipeline three ways on one pool of
long-lived worker processes:

1. a serial reference fit — the byte-identity baseline, which
   re-featurizes the training documents on every solver pass;
2. a first actor fit — featurization runs once, sharded across the
   workers, and lands in each worker's content-addressed shard-state
   cache; the k-means passes then run *in-worker*, so only the broadcast
   centroids and per-partition sufficient statistics cross the process
   boundary;
3. a refit of the same plan on the same pool — every featurized shard is
   served from the worker caches (op keys digest dataset content and
   operator state, not node identity), so the second fit ships almost
   nothing and recomputes nothing.

Headline claims asserted below (the example exits non-zero if one
breaks): all three fits predict byte-identically; the solver runs
in-worker (no gather); and the refit reports shard-state cache hits with
zero misses while shipping fewer bytes than the first fit.

Run:  python examples/actor_runtime.py
"""

import numpy as np

from repro import Context, Optimizer, Pipeline
from repro.core.backends import ActorBackend, LocalBackend
from repro.core.operators import Transformer
from repro.core.optimizer import passes_for_level
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
    unit_weighting,
)
from repro.workloads import amazon_reviews

NUM_TRAIN = 600
VOCAB = 300
FEATURES = 150
CLUSTERS = 5
PASSES = 5
WORKERS = 2


class Densify(Transformer):
    """Sparse feature row -> dense vector for the k-means head."""

    def apply(self, row):
        return np.asarray(row.todense()).ravel()


def build_plan(wl):
    ctx = Context()
    data = wl.train_data(ctx)
    pipe = (
        Pipeline.identity()
        .and_then(LowerCase())
        .and_then(Tokenizer())
        .and_then(NGramsFeaturizer(1, 2))
        .and_then(TermFrequency(unit_weighting()))
        .and_then(CommonSparseFeatures(FEATURES), data)
        .and_then(Densify())
        .and_then(KMeansEstimator(CLUSTERS, max_iter=PASSES, seed=7), data)
    )
    return Optimizer(passes_for_level("none")).optimize(pipe)


def main():
    wl = amazon_reviews(num_train=NUM_TRAIN, num_test=40, vocab_size=VOCAB, seed=0)
    test_docs = wl.test_data(Context()).collect()

    print(f"== serial reference ({NUM_TRAIN} docs, {PASSES}-pass k-means) ==")
    reference = build_plan(wl).execute(backend=LocalBackend())
    expected = [int(reference.apply(d)) for d in test_docs]
    print(f"assignments for {len(expected)} test docs computed serially")

    backend = ActorBackend(workers=WORKERS, task_timeout=300.0, reuse_pool=False)
    with backend:
        print(f"\n== first actor fit (workers={WORKERS}) ==")
        first = build_plan(wl).execute(backend=backend)
        cold = first.training_report
        print(f"in-worker iterative solvers: {cold.actor_iterative}")
        print(
            f"shard-state cache: {cold.shard_state_hits} hits, "
            f"{cold.shard_state_misses} misses (cold)"
        )
        print(f"bytes shipped to workers: {cold.bytes_shipped}")

        print("\n== refit: same plan, same pool ==")
        second = build_plan(wl).execute(backend=backend)
        warm = second.training_report
        print(
            f"shard-state cache: {warm.shard_state_hits} hits, "
            f"{warm.shard_state_misses} misses (warm)"
        )
        print(
            f"bytes shipped to workers: {warm.bytes_shipped} "
            f"(vs {cold.bytes_shipped} cold)"
        )

        print("\n== warm fit, summarized (TrainingReport.summary()) ==")
        print(warm.summary())

    # The headline claims, asserted.
    assert [int(first.apply(d)) for d in test_docs] == expected, "actor fit diverged"
    assert [int(second.apply(d)) for d in test_docs] == expected, "refit diverged"
    assert "KMeansEstimator" in cold.actor_iterative, "k-means did not run in-worker"
    assert not cold.process_gathered and not cold.process_fallback
    assert warm.shard_state_hits > 0, "refit reported no cache hits"
    assert warm.shard_state_misses == 0, "refit recomputed shard state"
    assert warm.bytes_shipped < cold.bytes_shipped, "refit did not ship fewer bytes"
    print(
        "\nall claims verified: byte-identical predictions, in-worker "
        "iteration, and a hit-only refit"
    )


if __name__ == "__main__":
    main()
