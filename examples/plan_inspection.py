"""Plan inspection: optimize -> explain -> execute.

Shows the composable optimizer API: build the Figure-2 text pipeline,
run an explicit pass list through an Optimizer, inspect the resulting
PhysicalPlan (decisions, cache set, modelled runtime, Graphviz DAG)
*before* any training happens, then execute it.  Also demonstrates a
user-defined pass dropping into the registry.

Run:  python examples/plan_inspection.py
"""

from repro import Context, Optimizer, Pass
from repro.core import passes_for_level
from repro.core.pipeline import Pipeline
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
    Trim,
)
from repro.workloads import amazon_reviews


class BudgetAuditPass(Pass):
    """A user pass: record how many nodes the plan would materialize.

    Passes see the full PlanState — DAG, profile, decisions so far — so
    drop-in extensions (sharding, backend lowering, audits like this one)
    need no changes to core modules.
    """

    def run(self, state):
        state.annotate(dag_nodes=len(state.node_labels()),
                       profiled=state.profile is not None)


def build_pipeline(ctx, workload):
    data = workload.train_data(ctx)
    labels = workload.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(Trim())
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda count: 1.0))
            .and_then(CommonSparseFeatures(1000), data)
            .and_then(LinearSolver(), data, labels))


def main():
    ctx = Context()
    workload = amazon_reviews(num_train=1000, num_test=200,
                              vocab_size=2000, seed=0)
    pipe = build_pipeline(ctx, workload)

    # The level shims are just pass lists; extend them freely.
    optimizer = Optimizer(passes_for_level("full", sample_sizes=(50, 100)))
    optimizer.insert_after("MaterializationPass", BudgetAuditPass())
    print(f"optimizer: {optimizer}\n")

    # 1. Optimize: no training happens here.
    plan = optimizer.optimize(pipe, level="full")

    # 2. Explain: every pass and its decisions, inspectable up front.
    explained = plan.explain()
    print(explained)
    assert "BudgetAuditPass" in explained, "user pass missing from explain()"
    assert "cache set" in explained
    est = plan.estimated_runtime_seconds()
    assert est is not None and est > 0, "profiled plan lost its estimate"
    print(f"\nmodelled training time under this cache set: {est:.3f}s")

    # The optimized DAG as Graphviz (cached nodes rendered filled).
    print("\nDOT (first lines):")
    for line in plan.to_dot().splitlines()[:6]:
        print(f"  {line}")

    # 3. Execute: train under the plan's decisions.
    model = plan.execute()
    report = model.training_report
    assert "BudgetAuditPass" in report.passes, \
        "user pass missing from the training report"
    print(f"\nexecuted in {report.execute_seconds:.2f}s "
          f"(passes: {report.passes})")
    good, bad = ("this product is great I love it",
                 "terrible waste of money, want a refund")
    for doc in (good, bad):
        print(f"  score={model.apply(doc)[0]:+.2f}  <-  {doc!r}")
    assert model.apply(good).shape == model.apply(bad).shape


if __name__ == "__main__":
    main()
