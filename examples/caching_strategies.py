"""Automatic materialization vs LRU vs rule-based caching (paper §5.4).

Fits the same text pipeline under several memory budgets with three
caching strategies and reports execution time and the number of partition
computations — recomputation of uncached intermediates is what separates
the strategies (the paper's Figure 10).

Run:  python examples/caching_strategies.py
"""

import time

from repro.dataset import Context
from repro.pipelines import amazon_pipeline
from repro.workloads import amazon_reviews

BUDGETS_MB = [0.2, 5.0, 10_000.0]
STRATEGIES = ["greedy", "lru", "rule"]


def main():
    wl = amazon_reviews(num_train=800, num_test=1, vocab_size=1500, seed=0)
    computes = {}
    print(f"{'strategy':<8} {'budget(MB)':>10} {'exec(s)':>8} "
          f"{'computes':>9}  cached-nodes")
    for budget_mb in BUDGETS_MB:
        for strategy in STRATEGIES:
            ctx = Context()
            pipe = amazon_pipeline(ctx, wl, num_features=600,
                                   lbfgs_iters=25)
            exec_ctx = Context()
            fitted = pipe.fit(level="full", sample_sizes=(30, 60),
                              cache_strategy=strategy,
                              mem_budget_bytes=budget_mb * 1e6,
                              ctx=exec_ctx)
            report = fitted.training_report
            cached = (report.cache_set_labels if strategy == "greedy"
                      else f"({strategy} manages the cache)")
            computes[(strategy, budget_mb)] = \
                exec_ctx.stats.total_computations()
            print(f"{strategy:<8} {budget_mb:>10.1f} "
                  f"{report.execute_seconds:>8.2f} "
                  f"{exec_ctx.stats.total_computations():>9}  {cached}")
        print()
    # Gate the smoke run: the caching claim itself.  A generous budget
    # must never recompute more than a starved one under greedy
    # selection (compute counts are deterministic).
    big, small = max(BUDGETS_MB), min(BUDGETS_MB)
    assert computes[("greedy", big)] <= computes[("greedy", small)], (
        f"greedy caching regressed: {computes[('greedy', big)]} computes "
        f"at {big}MB vs {computes[('greedy', small)]} at {small}MB")


if __name__ == "__main__":
    main()
