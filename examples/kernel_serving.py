"""Kernel-lowered serving: batch-invariant columnar execution.

Trains a *headless* text pipeline (raw score vectors, no classification
head) and serves it two ways: through the per-op interpreter
(``vectorize=False``) and through the default kernel-lowered path, where
``VectorizePass`` folds the kernel-capable op run into one columnar
``KernelStage`` that executes the whole micro-batch as a handful of
numpy calls.  The smoke run gates the two claims of the rewrite:

- **batch invariance** — the kernel-served batched predictions are
  byte-identical to ``fitted.apply`` per item, raw score vectors
  included (historically only classifier-headed pipelines held this on
  the batched path);
- **throughput** — on the sparse text featurization chain, the columnar
  path clears a measured speedup over the interpreter.

Run:  python examples/kernel_serving.py
"""

import time

import numpy as np

from repro import Context, ModelServer, Pipeline
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
    unit_weighting,
)
from repro.serving import compile_inference_plan
from repro.workloads import amazon_reviews


def train_scoring_model(wl, num_features=500):
    """Raw-score text model: featurize -> linear map, no arg-max head."""
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(unit_weighting()))
            .and_then(CommonSparseFeatures(num_features), data)
            .and_then(LinearSolver(), data, labels)
            .fit(level="none"))


def as_bytes(rows):
    return [(r.dtype, r.shape, r.tobytes()) for r in rows]


def main():
    wl = amazon_reviews(num_train=600, num_test=200, vocab_size=1500,
                        seed=0)
    print("training the raw-score text model...")
    fitted = train_scoring_model(wl)
    stream = [wl.test_items[i % len(wl.test_items)] for i in range(1000)]

    server = ModelServer(max_batch=64, max_delay_ms=2.0)
    with server:
        # vectorize=True is the register() default; the explicit pair
        # makes the comparison visible.
        kernel = server.register("scores", fitted, version="kernel")
        interp = server.register("scores", fitted, version="interp",
                                 vectorize=False)
        print(f"\ninterpreter plan: {len(interp.plan)} ops, "
              f"kernel plan: {len(kernel.plan)} ops")
        print(f"\nkernel-lowered plan:\n{kernel.plan.describe()}\n")
        assert "kernel[" in kernel.plan.describe()
        assert len(kernel.plan) < len(interp.plan)

        served = server.predict_many("scores", wl.test_items,
                                     version="kernel")

    # Batch invariance: the kernel-served *batched* raw scores are
    # byte-identical to the per-item reference.
    expected = [fitted.apply(x) for x in wl.test_items]
    assert as_bytes(served) == as_bytes(expected), (
        "kernel-served raw scores diverged from fitted.apply")
    print("batch invariance: served raw score vectors byte-identical "
          f"to fitted.apply on {len(expected)} items")

    # Throughput: time the two compiled batch paths directly (no queue
    # noise), interpreter vs columnar kernels.
    interp_plan = compile_inference_plan(fitted, vectorize=False)
    kernel_plan = compile_inference_plan(fitted, vectorize=True)
    interp_plan.run_batch(stream[:64])  # warmup both paths
    kernel_plan.run_batch(stream[:64])
    start = time.perf_counter()
    interp_plan.run_batch(stream)
    interp_rps = len(stream) / (time.perf_counter() - start)
    start = time.perf_counter()
    kernel_plan.run_batch(stream)
    kernel_rps = len(stream) / (time.perf_counter() - start)
    ratio = kernel_rps / interp_rps
    print(f"run_batch throughput: interpreter {interp_rps:.0f}/s, "
          f"kernels {kernel_rps:.0f}/s ({ratio:.1f}x)")
    assert ratio > 1.0, (
        f"columnar kernels did not beat the interpreter ({ratio:.2f}x)")

    scores = served[0]
    assert isinstance(scores, np.ndarray) and scores.ndim == 1
    print(f"\nexample raw score vector: {np.array_str(scores, precision=3)}")


if __name__ == "__main__":
    main()
