"""Online model serving: register -> serve -> inspect stats().

Trains two pipelines (the Figure-2 text classifier and a TIMIT-style
vector classifier), registers them on one ModelServer, and pushes a mixed
request stream through the dynamic micro-batcher and the cost-model
serving cache.  Then demonstrates a warm version swap: v2 is compiled and
warmed at register time, so deploy() is an atomic pointer move — and
because both versions were trained through the same featurization prefix,
the content-addressed serving cache answers v2's featurization from the
intermediates v1 already computed (cross-version reuse).

Run:  python examples/model_serving.py
"""

from repro import Context, ModelServer, Pipeline
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier, StandardScaler
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import amazon_reviews, timit_frames


def train_reviews_model(wl, num_features=500, l2_reg=1e-8):
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(num_features), data)
            .and_then(LinearSolver(l2_reg=l2_reg), data, labels)
            .and_then(MaxClassifier())
            .fit(sample_sizes=(50, 100)))


def train_frames_model(wl):
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(CosineRandomFeatures(512, seed=1), data)
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier())
            .fit(sample_sizes=(50, 100)))


def main():
    reviews = amazon_reviews(num_train=800, num_test=200, vocab_size=800,
                             seed=0)
    frames = timit_frames(num_train=600, num_test=200, dim=256,
                          num_classes=8, seed=0)
    print("training models...")
    reviews_v1 = train_reviews_model(reviews)
    frames_v1 = train_frames_model(frames)

    server = ModelServer(max_batch=32, max_delay_ms=2.0,
                         cache_budget_bytes=128e6, expected_reuse=6.0)
    with server:
        # Warmup items drive the op micro-profile; the optimizer's greedy
        # cost model then picks which inference nodes earn their bytes.
        server.register("reviews", reviews_v1,
                        warmup_items=reviews.test_items[:16])
        server.register("frames", frames_v1,
                        warmup_items=frames.test_items[:16])
        print(f"registered: {server.models()}")
        plan = reviews_v1.inference_plan()
        print(f"\ncompiled 'reviews' plan:\n{plan.describe()}\n")

        # A production-ish stream: every item is requested three times
        # (retries, hot content) -- the serving cache answers the repeats.
        for _ in range(3):
            served_reviews = server.predict_many("reviews",
                                                 reviews.test_items)
            served_frames = server.predict_many("frames", frames.test_items)
        # Gate the smoke run: served == offline apply, repeats included.
        assert served_reviews == [reviews_v1.apply(x)
                                  for x in reviews.test_items]
        assert served_frames == [frames_v1.apply(x)
                                 for x in frames.test_items]
        doc = "terrible product, broken on arrival, want a refund"
        print(f"predict('reviews', {doc!r}) ->",
              server.predict("reviews", doc))

        print("\n--- server.stats() after the mixed stream ---")
        print(server.stats().describe())

        # Warm swap: v2 (stronger regularization) is compiled and warmed
        # by register(); deploy() atomically moves the default pointer.
        # v2 shares v1's featurization prefix (LowerCase -> Tokenizer ->
        # TermFrequency -> fitted CommonSparseFeatures), so its ops get
        # the same content-addressed keys and both versions share one
        # serving cache for the registry entry.
        reviews_v2 = train_reviews_model(reviews, l2_reg=1.0)
        v2_model = server.register("reviews", reviews_v2, version="v2",
                                   warmup_items=reviews.test_items[:16])
        print("\nversions before deploy:", server.versions("reviews"),
              "default:", server.default_version("reviews"))
        server.deploy("reviews", "v2")
        print("after deploy:", server.default_version("reviews"))
        assert server.default_version("reviews") == "v2", "deploy() no-op"
        server.predict_many("reviews", reviews.test_items)
        stats = server.stats("reviews", "v2").models["reviews@v2"]
        print(f"v2 served {stats.requests} requests, "
              f"p95 {stats.p95_ms:.2f} ms")
        assert stats.requests >= len(reviews.test_items)
        assert stats.errors == 0, f"{stats.errors} serving errors"

        # Cross-version reuse: fresh documents (never served) reach the
        # old version first -- the traffic still draining against v1 --
        # which writes the shared featurization prefix into the
        # entry-wide content-addressed cache.  v2 then serves the same
        # documents for the first time and resumes from v1's entries.
        fresh = reviews.train_items[:120]
        server.predict_many("reviews", fresh, version="v1")
        hits_before = v2_model.cache.hits
        served_fresh = server.predict_many("reviews", fresh)
        assert served_fresh == [reviews_v2.apply(x) for x in fresh]
        cross_hits = v2_model.cache.hits - hits_before
        cross_rate = cross_hits / len(fresh)
        print(f"cross-version cache hit rate on v2's first pass over "
              f"{len(fresh)} fresh documents: {cross_rate:.2f}")
        assert cross_rate > 0, (
            "two versions sharing a featurization prefix must share "
            "cached intermediates")


if __name__ == "__main__":
    main()
