"""Strong-scaling simulation of the paper's three big pipelines (Fig. 12).

Prices each pipeline's per-stage cost profiles on simulated clusters of
8-128 r3.4xlarge nodes: ImageNet (featurization-bound) scales near-
linearly; Amazon (aggregation tree) and TIMIT (solver coordination)
flatten — the paper's Figure 12 shapes.

Run:  python examples/scaling_simulation.py
"""

from repro.scaling import pipeline_scaling

NODES = [8, 16, 32, 64, 128]


def main():
    speedups = {}
    for pipeline in ("amazon", "timit", "imagenet"):
        print(f"\n{pipeline} (minutes per stage):")
        results = pipeline_scaling(pipeline, NODES)
        categories = sorted({c for b in results.values() for c in b})
        header = f"{'nodes':>6} " + " ".join(f"{c:>14}" for c in categories)
        print(header + f" {'total':>8} {'speedup':>8}")
        base_total = None
        totals = []
        for nodes in NODES:
            breakdown = results[nodes]
            total = sum(breakdown.values())
            totals.append(total)
            if base_total is None:
                base_total = total
            cols = " ".join(f"{breakdown.get(c, 0) / 60:>14.1f}"
                            for c in categories)
            print(f"{nodes:>6} {cols} {total / 60:>8.1f} "
                  f"{base_total / total:>7.1f}x")
        # Gate the smoke run: strong scaling must be monotone.
        assert all(a > b for a, b in zip(totals, totals[1:])), pipeline
        speedups[pipeline] = totals[0] / totals[-1]
    # The Figure-12 shape: featurization-bound ImageNet out-scales the
    # coordination-bound pipelines.
    assert speedups["imagenet"] > speedups["amazon"]
    assert speedups["imagenet"] > speedups["timit"]


if __name__ == "__main__":
    main()
