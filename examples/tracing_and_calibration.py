"""End-to-end tracing and cost-model calibration.

Fits an iterative k-means text pipeline on the actor runtime with
tracing enabled, then closes the observability loop:

1. every instrumented layer — the parent's fit/wave spans, the in-worker
   shard interpreter's per-op spans — lands in ONE tracer, correlated by
   op **content key** (the same logical op matches across processes);
2. the merged trace exports as Chrome ``trace_event`` JSON, loadable in
   ``chrome://tracing`` / Perfetto, with one named lane per worker;
3. ``PhysicalPlan.explain(observed=True)`` renders the aggregated
   per-op table next to the optimizer's decisions;
4. a :class:`~repro.obs.CostModelCalibrator` replays the observed per-op
   seconds against the cluster simulator's predictions for the same
   plan, fits a multiplicative compute correction, and the corrected
   model feeds back into ``ShardingPass(workers="auto", calibration=…)``.

Headline claims asserted below (the example exits non-zero if one
breaks): the exported trace is valid JSON containing both parent-side
and in-worker spans sharing at least one op content key; and the fitted
calibration strictly reduces the simulator's RMS log error.

Run:  python examples/tracing_and_calibration.py
"""

import json
import os
import tempfile

import numpy as np

from repro import Context, Optimizer, Pipeline
from repro.cluster.resources import r3_4xlarge
from repro.core.backends import ActorBackend
from repro.core.operators import Transformer
from repro.core.optimizer import passes_for_level
from repro.core.passes import ShardingPass
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
    unit_weighting,
)
from repro.obs import CostModelCalibrator
from repro.obs import trace as obs_trace
from repro.workloads import amazon_reviews

NUM_TRAIN = 400
VOCAB = 200
FEATURES = 100
CLUSTERS = 4
PASSES = 4
WORKERS = 2


class Densify(Transformer):
    """Sparse feature row -> dense vector for the k-means head."""

    def apply(self, row):
        return np.asarray(row.todense()).ravel()


def build_plan(wl, resources, extra_passes=()):
    ctx = Context()
    data = wl.train_data(ctx)
    pipe = (
        Pipeline.identity()
        .and_then(LowerCase())
        .and_then(Tokenizer())
        .and_then(TermFrequency(unit_weighting()))
        .and_then(CommonSparseFeatures(FEATURES), data)
        .and_then(Densify())
        .and_then(KMeansEstimator(CLUSTERS, max_iter=PASSES, seed=7), data)
    )
    passes = passes_for_level("full", sample_sizes=(20, 40))
    passes.extend(extra_passes)
    return Optimizer(passes).optimize(pipe, resources=resources)


def main():
    wl = amazon_reviews(num_train=NUM_TRAIN, num_test=20, vocab_size=VOCAB, seed=0)
    resources = r3_4xlarge(4)

    print(
        f"== traced actor fit ({NUM_TRAIN} docs, {PASSES}-pass "
        f"k-means, workers={WORKERS}) =="
    )
    plan = build_plan(wl, resources)
    tracer = obs_trace.enable()
    try:
        with ActorBackend(
            workers=WORKERS, task_timeout=300.0, reuse_pool=False
        ) as backend:
            fitted = plan.execute(backend=backend)
    finally:
        obs_trace.disable()
    report = fitted.training_report
    spans = tracer.spans
    print(f"recorded {len(spans)} spans/events ({tracer.dropped} dropped)")

    # -- 1+2: one merged trace, exported for chrome://tracing ----------
    path = os.path.join(tempfile.gettempdir(), "repro_trace.json")
    tracer.export_chrome_trace(path)
    with open(path) as fh:
        doc = json.load(fh)
    print(f"chrome trace written to {path} ({len(doc['traceEvents'])} events)")

    parent_pid = os.getpid()
    parent_keys = {s["key"] for s in spans if s["pid"] == parent_pid and s["key"]}
    worker_keys = {s["key"] for s in spans if s["pid"] != parent_pid and s["key"]}
    shared = parent_keys & worker_keys
    lanes = sorted({s["proc"] for s in spans if s["pid"] != parent_pid})
    print(f"worker lanes in the trace: {lanes}")
    print(f"op content keys seen on BOTH sides of the pipe: {len(shared)}")

    # -- 3: the observed per-op table on the plan itself ---------------
    print("\n== explain(observed=True) ==")
    print(plan.explain(observed=True, tracer=tracer))

    # -- 4: calibrate the cost model against what actually ran ---------
    print("\n== cost-model calibration ==")
    calibrator = CostModelCalibrator()
    stages = calibrator.observe_plan(plan, spans=spans, report=report)
    print(f"joined {stages} predicted stages with observed seconds")
    for line in calibrator.table():
        print(f"  {line}")
    result = calibrator.calibrate()
    print(result.describe())

    # Feed the corrected model back into the auto-sharding decision.
    replan = build_plan(
        wl,
        r3_4xlarge(8),
        extra_passes=[ShardingPass(workers="auto", calibration=result)],
    )
    sharding = [line for line in replan.explain().splitlines() if "harding" in line]
    print("\ncalibrated re-plan sharding decision:")
    for line in sharding:
        print(f"  {line.strip()}")

    # The headline claims, asserted.
    assert doc["traceEvents"], "chrome trace exported no events"
    assert worker_keys, "no in-worker spans made it back to the parent"
    assert shared, "no op key correlated parent- and worker-side spans"
    assert stages > 0, "calibrator joined no stages"
    assert result.error_after < result.error_before, (
        "calibration did not reduce simulator error")
    assert result.error_ratio > 1.0
    print(
        "\nall claims verified: correlated cross-process trace, and "
        f"calibration cut simulator error {result.error_ratio:.2f}x"
    )


if __name__ == "__main__":
    main()
